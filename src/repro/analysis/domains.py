"""Strided-interval abstract domain for signed 32-bit machine words.

A :class:`SInt` describes a set of signed 32-bit values as the lattice
``{lo + k * stride | k >= 0} intersect [lo, hi]``: an interval joined
with a
congruence (the stride plays the role of a known-bits/alignment domain
-- a pointer with ``lo % 4 == 0`` and ``stride % 4 == 0`` is proven
word-aligned).  ``stride == 0`` iff the value is a single constant.

All arithmetic here is *exact* (unbounded python ints) followed by an
explicit :func:`wrap_signed` step that models the 2**32 truncation the
core applies; the wrap step reports whether truncation could actually
occur, which is what the saturation-analysis in
:mod:`repro.analysis.absint` keys on.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd

__all__ = ["INT_MIN", "INT_MAX", "WORD", "SInt", "TOP",
           "wrap_signed", "WIDEN_THRESHOLDS"]

INT_MIN = -(1 << 31)
INT_MAX = (1 << 31) - 1
WORD = 1 << 32

#: Widening jump targets (sorted): loop bounds land on one of these
#: instead of diverging one step per fixpoint iteration.
WIDEN_THRESHOLDS = (INT_MIN, -32768, -4096, -1, 0, 1, 4095, 4096,
                    32767, 65535, 1 << 20, INT_MAX)


@dataclass(frozen=True)
class SInt:
    """Strided interval over signed-32 values.  Invariants:
    ``lo <= hi``; ``stride == 0`` iff ``lo == hi``; ``stride`` divides
    ``hi - lo``."""

    lo: int
    hi: int
    stride: int

    # ------------------------------------------------------ constructors
    @staticmethod
    def const(v: int) -> "SInt":
        v = ((v + (1 << 31)) % WORD) - (1 << 31)
        return SInt(v, v, 0)

    @staticmethod
    def interval(lo: int, hi: int, stride: int = 1) -> "SInt":
        """Normalized interval; ``hi`` is aligned down onto the lattice
        ``{lo + k * stride}`` so the invariants hold."""
        if lo > hi:
            raise ValueError(f"empty interval [{lo}, {hi}]")
        if lo == hi:
            return SInt(lo, hi, 0)
        stride = max(int(stride), 1)
        hi = lo + ((hi - lo) // stride) * stride
        if lo == hi:
            return SInt(lo, hi, 0)
        return SInt(lo, hi, stride)

    # ---------------------------------------------------------- queries
    @property
    def is_const(self) -> bool:
        return self.lo == self.hi

    @property
    def is_top(self) -> bool:
        return self.lo == INT_MIN and self.hi == INT_MAX

    def contains(self, v: int) -> bool:
        if not self.lo <= v <= self.hi:
            return False
        return self.stride == 0 or (v - self.lo) % self.stride == 0

    def includes(self, other: "SInt") -> bool:
        """Lattice order: every value of ``other`` is a value of self."""
        if other.lo < self.lo or other.hi > self.hi:
            return False
        if self.stride == 0:
            return other.lo == self.lo and other.hi == self.hi
        return ((other.lo - self.lo) % self.stride == 0
                and other.stride % self.stride == 0)

    def aligned(self, size: int) -> bool:
        """Every value is a multiple of ``size`` (1, 2 or 4 bytes)."""
        if size <= 1:
            return True
        return self.lo % size == 0 and (self.stride % size == 0
                                        if self.stride else True)

    def u_bounds(self) -> tuple:
        """Unsigned hull ``(ulo, uhi)`` of the value set (stride kept
        only when the set does not straddle the sign boundary)."""
        if self.lo >= 0:
            return self.lo, self.hi
        if self.hi < 0:
            return self.lo + WORD, self.hi + WORD
        return 0, WORD - 1

    # ---------------------------------------------------------- lattice
    def join(self, other: "SInt") -> "SInt":
        lo = min(self.lo, other.lo)
        hi = max(self.hi, other.hi)
        if lo == hi:
            return SInt(lo, hi, 0)
        stride = gcd(gcd(self.stride, other.stride),
                     abs(self.lo - other.lo))
        return SInt.interval(lo, hi, stride or 1)

    def meet(self, other: "SInt"):
        """Over-approximated intersection, or ``None`` when provably
        empty.  The congruence of the larger-stride operand is kept."""
        lo, hi = max(self.lo, other.lo), min(self.hi, other.hi)
        if lo > hi:
            return None
        src = self if self.stride >= other.stride else other
        if src.stride:
            lo = src.lo + -(-(lo - src.lo) // src.stride) * src.stride
            hi = src.lo + ((hi - src.lo) // src.stride) * src.stride
            if lo > hi:
                return None
        return SInt.interval(lo, hi, src.stride or 1)

    def widen(self, new: "SInt") -> "SInt":
        """Classic threshold widening of self (old) by ``new``."""
        if self.includes(new):
            return self
        joined = self.join(new)
        lo, hi = joined.lo, joined.hi
        if lo < self.lo:
            lo = max((t for t in WIDEN_THRESHOLDS if t <= lo),
                     default=INT_MIN)
        else:
            lo = self.lo
        if hi > self.hi:
            hi = min((t for t in WIDEN_THRESHOLDS if t >= hi),
                     default=INT_MAX)
        else:
            hi = self.hi
        stride = gcd(joined.stride, abs(lo - joined.lo))
        return SInt.interval(lo, hi, stride or 1)

    # ------------------------------------------------------- arithmetic
    def add(self, other: "SInt") -> "SInt":
        return wrap_signed(self.lo + other.lo, self.hi + other.hi,
                           gcd(self.stride, other.stride))[0]

    def add_const(self, c: int) -> "SInt":
        return wrap_signed(self.lo + c, self.hi + c, self.stride)[0]

    def sub(self, other: "SInt") -> "SInt":
        return wrap_signed(self.lo - other.hi, self.hi - other.lo,
                           gcd(self.stride, other.stride))[0]

    def neg(self) -> "SInt":
        return wrap_signed(-self.hi, -self.lo, self.stride)[0]

    def mul(self, other: "SInt") -> "SInt":
        lo, hi = self.prod_bounds(other)
        if other.is_const:
            stride = self.stride * abs(other.lo)
        elif self.is_const:
            stride = other.stride * abs(self.lo)
        else:
            stride = 1
        return wrap_signed(lo, hi, stride)[0]

    def prod_bounds(self, other: "SInt") -> tuple:
        """Exact-math bounds of the pairwise product (no wrap)."""
        cs = (self.lo * other.lo, self.lo * other.hi,
              self.hi * other.lo, self.hi * other.hi)
        return min(cs), max(cs)

    def shl_const(self, n: int) -> "SInt":
        n &= 31
        return wrap_signed(self.lo << n, self.hi << n,
                           self.stride << n)[0]

    def sra_const(self, n: int) -> "SInt":
        n &= 31
        stride = (self.stride >> n if self.stride % (1 << n) == 0
                  else 1)
        return SInt.interval(self.lo >> n, self.hi >> n, stride or 1)

    def srl_const(self, n: int) -> "SInt":
        n &= 31
        if n == 0:
            return self
        if self.lo >= 0:
            return self.sra_const(n)
        if self.hi < 0:
            stride = (self.stride >> n if self.stride % (1 << n) == 0
                      else 1)
            return SInt.interval((self.lo + WORD) >> n,
                                 (self.hi + WORD) >> n, stride or 1)
        return SInt.interval(0, (WORD - 1) >> n, 1)

    # --------------------------------------------------------- bit ops
    def and_(self, other: "SInt") -> "SInt":
        if self.lo >= 0 and other.lo >= 0:
            return SInt.interval(0, min(self.hi, other.hi), 1)
        if self.lo >= 0:
            return SInt.interval(0, self.hi, 1)
        if other.lo >= 0:
            return SInt.interval(0, other.hi, 1)
        # Two possibly-negative operands: -5 & -3 == -7 undercuts both
        # lower bounds, so only the sign/top side is retained.
        return SInt.interval(INT_MIN, max(self.hi, other.hi), 1)

    def or_(self, other: "SInt") -> "SInt":
        if self.lo >= 0 and other.lo >= 0:
            hi = (1 << max(self.hi, other.hi).bit_length()) - 1
            return SInt.interval(max(self.lo, other.lo),
                                 min(hi, INT_MAX), 1)
        if self.hi < 0 or other.hi < 0:
            return SInt.interval(INT_MIN, -1, 1)
        return TOP

    def xor_(self, other: "SInt") -> "SInt":
        if self.lo >= 0 and other.lo >= 0:
            hi = (1 << max(self.hi, other.hi).bit_length()) - 1
            return SInt.interval(0, min(hi, INT_MAX), 1)
        return TOP

    # --------------------------------------------------------- min/max
    def _minmax_stride(self, other: "SInt") -> int:
        # The result is drawn from the union of both value sets, so the
        # congruence must also absorb the anchor offset (as in join);
        # gcd of the strides alone would exclude reachable values.
        return gcd(gcd(self.stride, other.stride),
                   abs(self.lo - other.lo)) or 1

    def min_(self, other: "SInt") -> "SInt":
        return SInt.interval(min(self.lo, other.lo),
                             min(self.hi, other.hi),
                             self._minmax_stride(other))

    def max_(self, other: "SInt") -> "SInt":
        return SInt.interval(max(self.lo, other.lo),
                             max(self.hi, other.hi),
                             self._minmax_stride(other))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_const:
            return f"SInt({self.lo})"
        s = f"%{self.stride}" if self.stride > 1 else ""
        return f"SInt[{self.lo}, {self.hi}]{s}"


TOP = SInt(INT_MIN, INT_MAX, 1)


def wrap_signed(lo: int, hi: int, stride: int = 1) -> tuple:
    """Model the core's 2**32 truncation of an exact-math interval.

    Returns ``(SInt, wrapped)`` where ``wrapped`` says whether any
    value in ``[lo, hi]`` lies outside the signed-32 range (i.e. the
    hardware result differs from the exact sum -- the event the
    saturation rules report).  When the whole interval wraps by the
    same multiple of 2**32 the result stays exact."""
    if INT_MIN <= lo and hi <= INT_MAX:
        if lo == hi:
            return SInt(lo, hi, 0), False
        return SInt.interval(lo, hi, stride or 1), False
    span = hi - lo
    if span >= WORD:
        return TOP, True
    w = ((lo + (1 << 31)) % WORD) - (1 << 31)
    if w + span <= INT_MAX:
        # Uniform shift by k * 2**32: congruence survives only for
        # strides dividing 2**32 (powers of two -- e.g. alignment).
        stride = gcd(gcd(stride, w - lo) or WORD, WORD)
        if span == 0:
            return SInt(w, w, 0), True
        return SInt.interval(w, w + span, stride or 1), True
    return TOP, True
