"""Statistical validation of the synthetic radio substrate.

The reproduction replaces the paper's field data with a synthetic channel
(DESIGN.md section 5).  For the substitution to be defensible, the
generator's statistics must match the model it claims to implement; this
module measures them:

* the distance/gain relationship recovers the configured path-loss
  exponent (log-log regression),
* the fast-fading component is exponential with unit mean (Rayleigh
  amplitude => exponential power), checked with a Kolmogorov-Smirnov
  statistic,
* the shadowing component is log-normal with the configured sigma.

``tests/test_channel_statistics.py`` asserts all three, so any change to
the generator that breaks its physics fails CI.
"""

from __future__ import annotations

import numpy as np

from .scenarios import InterferenceChannel

__all__ = ["estimate_pathloss_exponent", "fading_ks_statistic",
           "shadowing_sigma_db"]


def estimate_pathloss_exponent(scenario: InterferenceChannel,
                               n_draws: int = 200) -> float:
    """Recover the path-loss exponent by log-log regression.

    Averaging many fading draws per link isolates the deterministic
    distance dependence; the slope of log(gain) vs log(distance) is
    ``-exponent``.
    """
    dist = np.maximum(
        np.linalg.norm(scenario.rx[:, None, :] - scenario.tx[None, :, :],
                       axis=2), scenario.min_dist_m)
    total = np.zeros_like(dist)
    for _ in range(n_draws):
        # undo the per-draw median normalization to expose raw physics
        gains = scenario.gain_matrix()
        total += gains
    mean_gain = total / n_draws
    x = np.log10(dist.reshape(-1))
    y = np.log10(mean_gain.reshape(-1))
    slope, _ = np.polyfit(x, y, 1)
    return float(-slope)


def fading_ks_statistic(scenario: InterferenceChannel,
                        n_draws: int = 300) -> float:
    """KS distance between the per-link fading and Exp(1).

    Fixing one link and dividing out its average gain leaves the
    unit-mean exponential fast-fading factor (shadowing is redrawn each
    call in this generator, widening the tail slightly; the KS threshold
    in the tests accounts for that).
    """
    samples = np.empty(n_draws)
    for i in range(n_draws):
        gains = scenario.gain_matrix()
        samples[i] = gains[0, 0]
    samples /= samples.mean()
    samples.sort()
    empirical = np.arange(1, n_draws + 1) / n_draws
    theoretical = 1.0 - np.exp(-samples)
    return float(np.max(np.abs(empirical - theoretical)))


def shadowing_sigma_db(scenario: InterferenceChannel,
                       n_draws: int = 400) -> float:
    """Estimated sigma (dB) of the combined log-scale variability.

    The log-variability of one link mixes shadowing (sigma_s) and the
    exponential fading (sigma ~ 5.57 dB); the combined sigma should be
    close to sqrt(sigma_s^2 + 5.57^2).
    """
    samples = np.empty(n_draws)
    for i in range(n_draws):
        samples[i] = scenario.gain_matrix()[1, 1]
    db = 10.0 * np.log10(samples)
    return float(np.std(db))
