"""Suite-level execution and aggregation (the data behind Table I / Fig. 3).

Two paths produce per-network, per-level instruction/cycle histograms:

* :func:`network_trace` / :func:`suite_trace` — the exact static model
  (builder counts x timesteps), used at paper scale.  Plans are cached.
* :class:`SuiteRunner` — ISS execution with random Q3.12 parameters,
  bit-checked against the golden model; used at the default reduced scale
  to validate the static model end-to-end.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..core.tracer import Trace
from ..kernels.runner import NetworkPlan, NetworkProgram
from ..nn.network import Network, init_params, quantize_params
from .networks import FULL_SUITE, default_scale, suite

__all__ = ["plan_for", "network_trace", "suite_trace", "network_speedups",
           "suite_speedups", "SuiteRunner", "LEVEL_KEYS", "resolve_engine"]

LEVEL_KEYS = ("a", "b", "c", "d", "e")


def resolve_engine(engine: str, scale: int | None = None) -> str:
    """Resolve the ``"auto"`` engine choice for a validation run.

    Paper-scale runs (``scale == 1``, i.e. ``REPRO_SCALE=1``) execute
    orders of magnitude more instructions, so ``auto`` picks the turbo
    engine there and the interpreter at reduced scales, where turbo's
    compile time would dominate.  Explicit choices pass through.
    """
    if engine != "auto":
        return engine
    resolved = scale if scale is not None else default_scale()
    return "turbo" if resolved == 1 else "interp"


@lru_cache(maxsize=256)
def plan_for(network: Network, level_key: str) -> NetworkPlan:
    """Cached placement + codegen for (network, level)."""
    return NetworkPlan(network, level_key)


def network_trace(network: Network, level_key: str) -> Trace:
    """Exact per-inference histogram (one step x timesteps)."""
    step = plan_for(network, level_key).trace
    return step.scaled(network.timesteps)


def suite_trace(level_key: str, networks=FULL_SUITE) -> Trace:
    """Whole-suite histogram at one optimization level."""
    total = Trace()
    for network in networks:
        total.merge(network_trace(network, level_key))
    return total


def network_speedups(network: Network, baseline: str = "a") -> dict:
    """Cycle speedup of each level relative to ``baseline``."""
    base = network_trace(network, baseline).total_cycles
    return {key: base / network_trace(network, key).total_cycles
            for key in LEVEL_KEYS}


def suite_speedups(networks=FULL_SUITE, baseline: str = "a") -> dict:
    """Whole-suite cycle speedups per level relative to ``baseline``."""
    base = suite_trace(baseline, networks).total_cycles
    return {key: base / suite_trace(key, networks).total_cycles
            for key in LEVEL_KEYS}


class SuiteRunner:
    """ISS execution of the (scaled) suite with golden-model checking."""

    def __init__(self, scale: int | None = None, seed: int = 2020,
                 check: bool = True, engine: str = "auto"):
        self.networks = suite(scale)
        self.seed = seed
        self.check = check
        self.engine = resolve_engine(engine, scale)
        #: Engine that actually ran, per ``"network/level"`` — records
        #: turbo runs that fell back to the interpreter after a bail.
        self.engines_used: dict[str, str] = {}
        self._rng = np.random.default_rng(seed)

    def _random_input(self, network: Network) -> np.ndarray:
        floats = self._rng.uniform(-1.0, 1.0, network.input_size)
        return np.asarray(floats * 4096, dtype=np.int64)

    def run_network(self, network: Network, level_key: str) -> Trace:
        """Run one inference on the ISS; returns the execution histogram."""
        params = quantize_params(
            init_params(network, np.random.default_rng(self.seed)))
        engine = self.engine
        program = NetworkProgram(network, params, level_key, engine=engine)
        xs = [self._random_input(network) for _ in range(network.timesteps)]
        self._run(program, xs)
        if engine == "turbo" and program.cpu.turbo_stats.get("bails"):
            # A bailed kernel already fell back loop-locally and stayed
            # bit/cycle-exact, but suite validation numbers should never
            # ride on turbo's runtime heuristics: re-run the same inputs
            # on the interpreter and report that engine.
            engine = "interp"
            program = NetworkProgram(network, params, level_key,
                                     engine=engine)
            self._run(program, xs)
        self.engines_used[f"{network.name}/{level_key}"] = engine
        return program.trace

    def _run(self, program: NetworkProgram, xs) -> None:
        if self.check:
            program.run_and_check(xs)
        else:
            program.forward(xs)

    def run_suite(self, level_key: str) -> Trace:
        total = Trace()
        for network in self.networks:
            total.merge(self.run_network(network, level_key))
        return total

    def run_all_levels(self) -> dict:
        return {key: self.run_suite(key) for key in LEVEL_KEYS}
