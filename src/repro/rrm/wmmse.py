"""WMMSE sum-rate power allocation (Shi et al. 2011, paper ref. [4]).

The scalar (single-antenna) K-user interference-channel variant: each
transmitter k serves receiver k with power ``p_k in [0, p_max]``, and the
classic u/w/v alternating updates maximize the weighted sum rate.  This is
the classical iterative RRM algorithm the paper's intro positions neural
networks against, and the imitation-learning target of benchmark [2]
(Sun et al., "Learning to Optimize").
"""

from __future__ import annotations

import numpy as np

__all__ = ["wmmse_power_allocation", "sum_rate"]


def sum_rate(h_gain: np.ndarray, power: np.ndarray,
             noise: float = 1.0) -> float:
    """Sum of ``log2(1 + SINR_k)`` for a squared-gain matrix.

    Args:
        h_gain: ``(K, K)`` squared channel gains; ``h_gain[k, j]`` is the
            gain from transmitter j to receiver k.
        power: ``(K,)`` transmit powers.
        noise: receiver noise power.
    """
    h_gain = np.asarray(h_gain, dtype=np.float64)
    power = np.asarray(power, dtype=np.float64)
    signal = np.diag(h_gain) * power
    interference = h_gain @ power - signal
    sinr = signal / (interference + noise)
    return float(np.sum(np.log2(1.0 + sinr)))


def wmmse_power_allocation(h_gain: np.ndarray, p_max: float = 1.0,
                           noise: float = 1.0, iterations: int = 100,
                           tol: float = 1e-6,
                           seed: int | None = 0) -> np.ndarray:
    """Scalar WMMSE; returns the ``(K,)`` power vector.

    Channel *amplitudes* are the square roots of ``h_gain``.  Iterates the
    closed-form u (MMSE receiver), w (MSE weight), v (transmit amplitude)
    updates until the sum-rate utility moves less than ``tol``.  The
    transmit amplitudes start from a seeded random point: full power is a
    stationary point of the updates in symmetric channels, so a
    deterministic full-power start can silently return the worst
    allocation.  Pass ``seed=None`` for a full-power start.
    """
    h_gain = np.asarray(h_gain, dtype=np.float64)
    if h_gain.ndim != 2 or h_gain.shape[0] != h_gain.shape[1]:
        raise ValueError("h_gain must be a square matrix")
    if np.any(h_gain < 0):
        raise ValueError("squared gains must be non-negative")
    amp = np.sqrt(h_gain)
    k = h_gain.shape[0]
    vmax = np.sqrt(p_max)
    if seed is None:
        v = np.full(k, vmax)
    else:
        v = np.random.default_rng(seed).uniform(0.1, 1.0, k) * vmax
    last_utility = -np.inf
    for _ in range(iterations):
        # u: MMSE receive scalars.
        rx_power = h_gain @ (v ** 2) + noise
        u = np.diag(amp) * v / rx_power
        # w: MSE weights.
        e = 1.0 - u * np.diag(amp) * v
        w = 1.0 / np.maximum(e, 1e-12)
        # v: transmit amplitudes (clipped to the power budget).
        numer = w * u * np.diag(amp)
        denom = h_gain.T @ (w * u ** 2)
        v = np.clip(numer / np.maximum(denom, 1e-12), 0.0, vmax)
        utility = sum_rate(h_gain, v ** 2, noise)
        if abs(utility - last_utility) < tol:
            break
        last_utility = utility
    return v ** 2
