"""Base-station scheduler simulation: the paper's deployment story.

The introduction frames the core as "a fully programmable and efficient
open-source IP for future systems-on-chip for 5G RRM" with millisecond
scheduling frames.  This module closes that loop: a slotted scheduler in
which, every TTI (transmission time interval),

1. the channel evolves (new fast fading on the interference channel),
2. the power-control policy network executes *on the simulated core*
   (or any callable policy),
3. the resulting allocation's sum rate and the core's cycle budget are
   accounted.

It reports achieved throughput and the fraction of each TTI the core
spends on inference — the utilization argument for embedding the extended
core in a base-station SoC.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..energy.model import FREQ_HZ
from .scenarios import InterferenceChannel
from .wmmse import sum_rate, wmmse_power_allocation

__all__ = ["TtiReport", "BaseStationSim"]


@dataclass
class TtiReport:
    """Aggregated outcome of one scheduler run."""

    slots: int
    mean_rate: float
    mean_rate_wmmse: float
    mean_rate_full: float
    cycles_per_slot: float
    tti_us: float

    @property
    def core_utilization(self) -> float:
        """Fraction of the TTI spent on policy inference at 380 MHz."""
        return (self.cycles_per_slot / FREQ_HZ) / (self.tti_us * 1e-6)

    @property
    def rate_vs_wmmse(self) -> float:
        return self.mean_rate / self.mean_rate_wmmse


class BaseStationSim:
    """Slotted power-control scheduler over an interference channel."""

    def __init__(self, n_pairs: int, area_m: float = 60.0,
                 tti_us: float = 1000.0, seed: int = 0):
        if tti_us <= 0:
            raise ValueError("TTI must be positive")
        self.scenario = InterferenceChannel(n_pairs, area_m=area_m,
                                            seed=seed)
        self.n_pairs = n_pairs
        self.tti_us = tti_us

    def run(self, policy, n_slots: int = 50,
            cycles_per_slot: float = 0.0) -> TtiReport:
        """Drive ``policy(features) -> power vector`` for ``n_slots`` TTIs.

        ``cycles_per_slot`` is the core cost of one policy evaluation
        (e.g. ``NetworkProgram.plan.cycles_per_step``); pass 0 for
        analytic policies.
        """
        rates, rates_w, rates_f = [], [], []
        feat_size = self.n_pairs * self.n_pairs
        for _ in range(n_slots):
            gains = self.scenario.gain_matrix()
            feats = self.scenario.features(gains, feat_size)
            power = np.clip(np.asarray(policy(feats), dtype=np.float64),
                            0.0, 1.0)
            if power.shape != (self.n_pairs,):
                raise ValueError("policy must return one power per pair")
            rates.append(sum_rate(gains, power))
            rates_w.append(sum_rate(gains, wmmse_power_allocation(gains)))
            rates_f.append(sum_rate(gains, np.ones(self.n_pairs)))
        return TtiReport(
            slots=n_slots,
            mean_rate=float(np.mean(rates)),
            mean_rate_wmmse=float(np.mean(rates_w)),
            mean_rate_full=float(np.mean(rates_f)),
            cycles_per_slot=cycles_per_slot,
            tti_us=self.tti_us)
