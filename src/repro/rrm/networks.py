"""The 10-network RRM benchmark suite (paper Sec. II-C).

Architectures are reconstructed from the cited source papers where they
state them and otherwise sized to match the footprints the paper itself
pins down (see DESIGN.md section 6: [33] and [14] are explicitly small-FM
networks; [13]/[14] have the quoted tanh/sig cycle shares; the Fig. 3 bar
pattern fixes the relative sizes).  Every width is even, which the layout
rules require and real kernels prefer anyway.

``suite(scale)`` returns the networks with all widths divided by ``scale``
(default from the ``REPRO_SCALE`` environment variable, 4): the analytical
performance model always runs the full-scale suite, while ISS-executed
validation and benchmarks run the scaled one in seconds.
"""

from __future__ import annotations

import os

from ..nn.network import ConvSpec, DenseSpec, LstmSpec, Network

__all__ = ["FULL_SUITE", "suite", "default_scale", "scale_network",
           "NETWORK_ORDER"]

#: Order used in Fig. 3 (paper's citation keys).
NETWORK_ORDER = ("challita2017", "naparstek2019", "ahmed2019", "eisen2019",
                 "lee2018", "nasir2018", "sun2017", "ye2018", "yu2017",
                 "wang2018")


def _dense_chain(dims, last_activation=None, hidden_activation="relu"):
    layers = []
    for i, (n_in, n_out) in enumerate(zip(dims, dims[1:])):
        act = last_activation if i == len(dims) - 2 else hidden_activation
        layers.append(DenseSpec(n_in, n_out, act))
    return tuple(layers)


FULL_SUITE = (
    Network(
        name="challita2017",
        layers=(LstmSpec(64, 64), DenseSpec(64, 32, "sig")),
        timesteps=1,
        source="[13] Challita et al., proactive LTE-U resource management. "
               "Sizing pinned by the paper's own numbers: the two LSTM "
               "networks produce 400 tanh/sig evaluations per suite pass "
               "(Table Ic: 0.4 kcycles) and ~51 kcycles at stage c "
               "combined; tanh/sig is 10.3% of this network's stage-b "
               "cycles"),
    Network(
        name="naparstek2019",
        layers=(LstmSpec(6, 16), DenseSpec(16, 8, "sig")),
        timesteps=1,
        source="[14] Naparstek & Cohen, distributed dynamic spectrum "
               "access (small per-user LSTM agent; tanh/sig is ~1/3 of "
               "its stage-b cycles per the paper)"),
    Network(
        name="ahmed2019",
        layers=_dense_chain((64, 500, 500, 200), last_activation="sig"),
        source="[3] Ahmed et al., deep learning power allocation in "
               "multi-cell networks"),
    Network(
        name="eisen2019",
        layers=_dense_chain((10, 32, 16, 4), last_activation=None),
        source="[33] Eisen et al., learning optimal wireless resource "
               "allocations (smallest-FM network of the suite)"),
    Network(
        name="lee2018",
        layers=(ConvSpec(1, 8, 12, 12, 3), ConvSpec(8, 8, 10, 10, 3),
                DenseSpec(512, 64, "relu"), DenseSpec(64, 26, None)),
        source="[15] Lee et al., deep power control (CNN over channel "
               "gain grids)"),
    Network(
        name="nasir2018",
        layers=_dense_chain((50, 400, 300, 100), last_activation=None),
        source="[12] Nasir & Guo, distributed dynamic power allocation "
               "(per-link DQN)"),
    Network(
        name="sun2017",
        layers=_dense_chain((30, 200, 200, 200, 30),
                            last_activation="sig"),
        source="[2] Sun et al., learning to optimize: WMMSE-imitating MLP "
               "(three hidden layers of 200, as in the source paper)"),
    Network(
        name="ye2018",
        layers=_dense_chain((82, 600, 400, 200, 60), last_activation=None),
        source="[9] Ye & Li, deep reinforcement learning for V2V resource "
               "allocation (largest FC network of the suite)"),
    Network(
        name="yu2017",
        layers=_dense_chain((64, 300, 200, 2), last_activation="sig"),
        source="[11] Yu et al., deep-reinforcement multiple access"),
    Network(
        name="wang2018",
        layers=_dense_chain((16, 32, 32, 16), last_activation=None),
        source="[17] Wang et al., DQN for dynamic multichannel access "
               "(second smallest network of the suite)"),
)


def default_scale() -> int:
    """Suite down-scale factor from ``REPRO_SCALE`` (1 = paper scale)."""
    value = int(os.environ.get("REPRO_SCALE", "4"))
    if value < 1:
        raise ValueError("REPRO_SCALE must be >= 1")
    return value


def _scale_dim(dim: int, scale: int, minimum: int = 2) -> int:
    scaled = max(minimum, round(dim / scale))
    return scaled + (scaled % 2)  # keep widths even


def scale_network(network: Network, scale: int) -> Network:
    """Return a copy of ``network`` with every width divided by ``scale``.

    Spatial conv dims shrink gently (they are already small); kernel size
    is kept so the kernel mix is unchanged.
    """
    if scale == 1:
        return network
    layers = []
    prev_out = None   # output width of the previous scaled layer
    prev_conv = None  # previous scaled ConvSpec, for spatial chaining
    # A chain of valid convolutions shrinks each spatial dim by k-1 per
    # layer; the first conv must stay large enough for the last layer to
    # produce at least one output pixel.
    conv_reduction = sum(spec.k - 1 for spec in network.layers
                         if isinstance(spec, ConvSpec))
    for spec in network.layers:
        if isinstance(spec, DenseSpec):
            n_in = prev_out if prev_out is not None \
                else _scale_dim(spec.n_in, scale)
            n_out = _scale_dim(spec.n_out, scale)
            layers.append(DenseSpec(n_in, n_out, spec.activation))
            prev_out, prev_conv = n_out, None
        elif isinstance(spec, LstmSpec):
            m = prev_out if prev_out is not None \
                else _scale_dim(spec.m, scale)
            n = _scale_dim(spec.n, scale)
            layers.append(LstmSpec(m, n))
            prev_out, prev_conv = n, None
        else:
            if prev_conv is not None:
                cin, h, w = prev_conv.cout, prev_conv.h_out, prev_conv.w_out
            else:
                cin = spec.cin
                shrink = max(1, round(scale ** 0.5))
                floor = conv_reduction + 1
                h = max(floor, round(spec.h / shrink))
                w = max(floor, round(spec.w / shrink))
            cout = max(2, _scale_dim(spec.cout, scale))
            conv = ConvSpec(cin, cout, h, w, spec.k)
            layers.append(conv)
            prev_out, prev_conv = conv.out_size, conv
    return Network(name=network.name, layers=tuple(layers),
                   timesteps=network.timesteps, source=network.source)


def suite(scale: int | None = None) -> tuple:
    """The benchmark suite at the requested (or default) scale."""
    if scale is None:
        scale = default_scale()
    return tuple(scale_network(net, scale) for net in FULL_SUITE)
