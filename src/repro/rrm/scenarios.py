"""Synthetic 5G-RRM workload substrates.

The paper's networks are trained/evaluated on radio environments we cannot
ship, so two standard synthetic substitutes generate realistic input
distributions (DESIGN.md section 5):

* :class:`InterferenceChannel` — K transceiver pairs dropped in a square
  cell; 3GPP-style log-distance path loss, log-normal shadowing and
  Rayleigh fast fading produce the squared-gain matrices consumed by the
  power-control networks ([2], [3], [12], [15]) and by WMMSE.
* :class:`SpectrumAccessEnv` — N channels occupied by a two-state Markov
  primary user; an agent observes the previous slot's occupancy and picks
  a channel, the success/collision reward of the DSA agents ([9], [11],
  [14], [17]).
"""

from __future__ import annotations

import numpy as np

from .wmmse import sum_rate

__all__ = ["InterferenceChannel", "SpectrumAccessEnv"]


class InterferenceChannel:
    """K-pair interference channel with distance-based gains."""

    def __init__(self, n_pairs: int, area_m: float = 150.0,
                 pathloss_exp: float = 3.0, shadowing_db: float = 6.0,
                 min_dist_m: float = 2.0, max_link_m: float = 40.0,
                 seed: int | None = None):
        if n_pairs < 1:
            raise ValueError("need at least one pair")
        self.n_pairs = n_pairs
        self.area_m = area_m
        self.pathloss_exp = pathloss_exp
        self.shadowing_db = shadowing_db
        self.min_dist_m = min_dist_m
        self.max_link_m = max_link_m
        self.rng = np.random.default_rng(seed)
        self.drop()

    def drop(self) -> None:
        """Re-draw transmitter/receiver positions (a new cell layout)."""
        k = self.n_pairs
        self.tx = self.rng.uniform(0, self.area_m, (k, 2))
        offset_angle = self.rng.uniform(0, 2 * np.pi, k)
        offset_dist = self.rng.uniform(self.min_dist_m, self.max_link_m, k)
        self.rx = self.tx + np.stack(
            [offset_dist * np.cos(offset_angle),
             offset_dist * np.sin(offset_angle)], axis=1)
        self.rx = np.clip(self.rx, 0, self.area_m)

    def gain_matrix(self) -> np.ndarray:
        """Draw one ``(K, K)`` squared-gain matrix (fast fading included).

        ``G[k, j]``: gain from transmitter j to receiver k, normalized so
        the median direct gain is ~1 (keeps Q3.12 inputs well-scaled).
        """
        k = self.n_pairs
        dist = np.maximum(
            np.linalg.norm(self.rx[:, None, :] - self.tx[None, :, :],
                           axis=2), self.min_dist_m)
        pathloss = dist ** (-self.pathloss_exp)
        shadow_db = self.rng.normal(0.0, self.shadowing_db, (k, k))
        shadowing = 10.0 ** (shadow_db / 10.0)
        # Rayleigh amplitude => exponential power fading.
        fading = self.rng.exponential(1.0, (k, k))
        gains = pathloss * shadowing * fading
        direct = np.diag(gains)
        return gains / np.median(direct)

    def features(self, gains: np.ndarray, size: int) -> np.ndarray:
        """Log-compressed gain features padded/truncated to ``size``.

        This is the standard input encoding of the power-control papers:
        flattened dB-scale gains, normalized into [-1, 1].
        """
        flat = np.log10(np.maximum(gains.reshape(-1), 1e-12))
        flat = np.clip(flat / 6.0, -1.0, 1.0)
        if flat.size >= size:
            return flat[:size]
        return np.pad(flat, (0, size - flat.size))

    def evaluate(self, gains: np.ndarray, power: np.ndarray,
                 noise: float = 1.0) -> float:
        """Sum rate achieved by a power vector on one realization."""
        return sum_rate(gains, power, noise)


class SpectrumAccessEnv:
    """Slotted multichannel access against Markov primary users."""

    def __init__(self, n_channels: int, p_busy_to_free: float = 0.3,
                 p_free_to_busy: float = 0.2, seed: int | None = None):
        if n_channels < 1:
            raise ValueError("need at least one channel")
        if not (0 <= p_busy_to_free <= 1 and 0 <= p_free_to_busy <= 1):
            raise ValueError("transition probabilities must be in [0, 1]")
        self.n_channels = n_channels
        self.p_bf = p_busy_to_free
        self.p_fb = p_free_to_busy
        self.rng = np.random.default_rng(seed)
        self.occupancy = self.rng.integers(0, 2, n_channels)

    def observation(self) -> np.ndarray:
        """Previous-slot occupancy as +/-1 features."""
        return (1.0 - 2.0 * self.occupancy).astype(np.float64)

    def step(self, channel: int) -> tuple[float, np.ndarray]:
        """Advance one slot; returns (reward, new observation).

        Reward is +1 for transmitting on a free channel, -1 on collision.
        """
        if not 0 <= channel < self.n_channels:
            raise ValueError("channel index out of range")
        reward = -1.0 if self.occupancy[channel] else 1.0
        flips = self.rng.uniform(size=self.n_channels)
        stay_busy = self.occupancy == 1
        self.occupancy = np.where(
            stay_busy, (flips >= self.p_bf).astype(np.int64),
            (flips < self.p_fb).astype(np.int64))
        return reward, self.observation()
