"""Minimal numpy DQN for the spectrum-access environment.

Several of the paper's benchmark networks are deep Q-networks trained with
reinforcement learning ([9], [11], [14], [17]).  This module implements a
small but real DQN loop — epsilon-greedy exploration, an experience-replay
buffer, a target network with periodic synchronization, TD(0) targets —
over :class:`~repro.rrm.scenarios.SpectrumAccessEnv`, using the same
numpy MLP machinery as the imitation trainer.

The result is a *trained* Q-network that can be quantized and executed on
the simulated core (see ``examples/spectrum_access.py`` and the tests),
instead of random weights.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from ..nn.network import DenseSpec, Network
from .scenarios import SpectrumAccessEnv
from .trainer import MLPTrainer

__all__ = ["ReplayBuffer", "DqnAgent", "train_dsa_agent",
           "evaluate_policy"]


class ReplayBuffer:
    """Fixed-capacity uniform-sampling experience replay."""

    def __init__(self, capacity: int, obs_size: int,
                 seed: int | None = None):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.obs = np.zeros((capacity, obs_size))
        self.actions = np.zeros(capacity, dtype=np.int64)
        self.rewards = np.zeros(capacity)
        self.next_obs = np.zeros((capacity, obs_size))
        self.size = 0
        self._next = 0
        self.rng = np.random.default_rng(seed)

    def push(self, obs, action, reward, next_obs) -> None:
        i = self._next
        self.obs[i] = obs
        self.actions[i] = action
        self.rewards[i] = reward
        self.next_obs[i] = next_obs
        self._next = (i + 1) % self.capacity
        self.size = min(self.size + 1, self.capacity)

    def sample(self, batch: int):
        idx = self.rng.integers(0, self.size, batch)
        return (self.obs[idx], self.actions[idx], self.rewards[idx],
                self.next_obs[idx])


@dataclass
class DqnConfig:
    hidden: tuple = (32, 16)
    gamma: float = 0.9
    lr: float = 0.02
    epsilon_start: float = 1.0
    epsilon_end: float = 0.05
    epsilon_decay_steps: int = 2000
    buffer_capacity: int = 4096
    batch_size: int = 32
    target_sync_every: int = 100
    warmup: int = 64


class DqnAgent:
    """Q-network + target network + replay over one DSA environment."""

    def __init__(self, n_channels: int, config: DqnConfig | None = None,
                 seed: int = 0):
        self.n_channels = n_channels
        self.config = config or DqnConfig()
        dims = (n_channels,) + tuple(self.config.hidden) + (n_channels,)
        layers = []
        for i, (a, b) in enumerate(zip(dims, dims[1:])):
            act = None if i == len(dims) - 2 else "relu"
            layers.append(DenseSpec(a, b, act))
        self.network = Network("dsa_dqn", tuple(layers),
                               source="DQN over Markov spectrum access")
        self.trainer = MLPTrainer(self.network, seed=seed,
                                  lr=self.config.lr)
        self.target_params = copy.deepcopy(self.trainer.params)
        self.buffer = ReplayBuffer(self.config.buffer_capacity, n_channels,
                                   seed=seed)
        self.rng = np.random.default_rng(seed + 1)
        self.steps = 0

    # ------------------------------------------------------------------
    def epsilon(self) -> float:
        cfg = self.config
        frac = min(1.0, self.steps / cfg.epsilon_decay_steps)
        return cfg.epsilon_start + frac * (cfg.epsilon_end
                                           - cfg.epsilon_start)

    def q_values(self, obs, params=None) -> np.ndarray:
        saved = self.trainer.params
        if params is not None:
            self.trainer.params = params
        out, _ = self.trainer.forward(np.atleast_2d(obs))
        self.trainer.params = saved
        return out

    def act(self, obs) -> int:
        if self.rng.uniform() < self.epsilon():
            return int(self.rng.integers(self.n_channels))
        return int(np.argmax(self.q_values(obs)[0]))

    def observe(self, obs, action, reward, next_obs) -> None:
        self.buffer.push(obs, action, reward, next_obs)
        self.steps += 1
        if self.buffer.size >= self.config.warmup:
            self._learn()
        if self.steps % self.config.target_sync_every == 0:
            self.target_params = copy.deepcopy(self.trainer.params)

    def _learn(self) -> None:
        cfg = self.config
        obs, actions, rewards, next_obs = self.buffer.sample(cfg.batch_size)
        q_next = self.q_values(next_obs, self.target_params)
        targets = self.q_values(obs).copy()
        td = rewards + cfg.gamma * q_next.max(axis=1)
        targets[np.arange(len(actions)), actions] = td
        self.trainer.train_batch(obs, targets)


def train_dsa_agent(n_channels: int = 6, episodes: int = 8,
                    steps_per_episode: int = 250, seed: int = 0,
                    config: DqnConfig | None = None) -> DqnAgent:
    """Train a DQN on the spectrum-access environment; returns the agent."""
    agent = DqnAgent(n_channels, config, seed=seed)
    for episode in range(episodes):
        env = SpectrumAccessEnv(n_channels, p_busy_to_free=0.15,
                                p_free_to_busy=0.1, seed=seed + episode)
        obs = env.observation()
        for _ in range(steps_per_episode):
            action = agent.act(obs)
            reward, next_obs = env.step(action)
            agent.observe(obs, action, reward, next_obs)
            obs = next_obs
    return agent


def evaluate_policy(select_action, n_channels: int, n_slots: int = 400,
                    seed: int = 123) -> float:
    """Success rate of ``select_action(obs) -> channel`` over fresh slots."""
    env = SpectrumAccessEnv(n_channels, p_busy_to_free=0.15,
                            p_free_to_busy=0.1, seed=seed)
    obs = env.observation()
    wins = 0
    for _ in range(n_slots):
        reward, obs = env.step(int(select_action(obs)))
        wins += reward > 0
    return wins / n_slots
