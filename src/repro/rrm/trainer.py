"""Minimal numpy MLP trainer ("learning to optimize", benchmark [2]).

Trains a dense-only :class:`~repro.nn.network.Network` to imitate WMMSE
power allocations (Sun et al. 2017).  Pure numpy SGD with backprop through
relu / sigmoid / identity layers and an MSE loss — enough to produce a
*real* trained model for the quantization-robustness experiment and the
power-allocation example, instead of random weights.
"""

from __future__ import annotations

import numpy as np

from ..nn.network import DenseSpec, Network, init_params
from .scenarios import InterferenceChannel
from .wmmse import wmmse_power_allocation

__all__ = ["MLPTrainer", "make_wmmse_dataset", "train_power_allocator"]


def _act(name, z):
    if name is None:
        return z
    if name == "relu":
        return np.maximum(z, 0.0)
    if name == "sig":
        return 1.0 / (1.0 + np.exp(-z))
    if name == "tanh":
        return np.tanh(z)
    raise ValueError(f"unsupported activation {name!r}")


def _act_grad(name, z, a):
    if name is None:
        return np.ones_like(z)
    if name == "relu":
        return (z > 0).astype(np.float64)
    if name == "sig":
        return a * (1.0 - a)
    if name == "tanh":
        return 1.0 - a ** 2
    raise ValueError(f"unsupported activation {name!r}")


class MLPTrainer:
    """SGD/MSE trainer for dense-only networks."""

    def __init__(self, network: Network, seed: int = 0, lr: float = 0.05,
                 weight_clip: float = 4.0):
        for spec in network.layers:
            if not isinstance(spec, DenseSpec):
                raise ValueError("MLPTrainer handles dense-only networks")
        self.network = network
        self.lr = lr
        #: keep weights comfortably inside Q3.12 (|w| < 4) during training
        self.weight_clip = weight_clip
        self.params = init_params(network, np.random.default_rng(seed))

    def forward(self, x_batch: np.ndarray):
        """Batch forward; returns (output, per-layer (z, a) cache)."""
        a = np.asarray(x_batch, dtype=np.float64)
        cache = []
        for spec, layer in zip(self.network.layers, self.params):
            z = a @ layer["w"].T + layer["b"]
            a_next = _act(spec.activation, z)
            cache.append((a, z, a_next))
            a = a_next
        return a, cache

    def train_batch(self, x_batch: np.ndarray, y_batch: np.ndarray) -> float:
        """One SGD step on a minibatch; returns the MSE loss."""
        y_batch = np.asarray(y_batch, dtype=np.float64)
        out, cache = self.forward(x_batch)
        batch = max(1, x_batch.shape[0])
        loss = float(np.mean((out - y_batch) ** 2))
        delta = 2.0 * (out - y_batch) / (batch * y_batch.shape[1])
        for spec, layer, (a_in, z, a_out) in zip(
                reversed(self.network.layers), reversed(self.params),
                reversed(cache)):
            delta = delta * _act_grad(spec.activation, z, a_out)
            grad_w = delta.T @ a_in
            grad_b = delta.sum(axis=0)
            delta = delta @ layer["w"]
            layer["w"] -= self.lr * grad_w
            layer["b"] -= self.lr * grad_b
            np.clip(layer["w"], -self.weight_clip, self.weight_clip,
                    out=layer["w"])
            np.clip(layer["b"], -self.weight_clip, self.weight_clip,
                    out=layer["b"])
        return loss

    def fit(self, x_data: np.ndarray, y_data: np.ndarray, epochs: int = 50,
            batch_size: int = 32, seed: int = 0) -> list[float]:
        """Epoch loop; returns the loss history."""
        rng = np.random.default_rng(seed)
        losses = []
        n = x_data.shape[0]
        for _ in range(epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, batch_size):
                idx = order[start:start + batch_size]
                epoch_loss += self.train_batch(x_data[idx], y_data[idx]) \
                    * len(idx)
            losses.append(epoch_loss / n)
        return losses


def make_wmmse_dataset(n_pairs: int, n_samples: int, seed: int = 0,
                       noise: float = 1.0, area_m: float = 150.0):
    """(features, WMMSE powers, raw gain matrices) for imitation learning."""
    scenario = InterferenceChannel(n_pairs, area_m=area_m, seed=seed)
    feat_size = n_pairs * n_pairs
    xs = np.empty((n_samples, feat_size))
    ys = np.empty((n_samples, n_pairs))
    gains = np.empty((n_samples, n_pairs, n_pairs))
    for i in range(n_samples):
        g = scenario.gain_matrix()
        gains[i] = g
        xs[i] = scenario.features(g, feat_size)
        ys[i] = wmmse_power_allocation(g, noise=noise)
    return xs, ys, gains


def train_power_allocator(n_pairs: int = 5, hidden: tuple = (64, 32),
                          n_samples: int = 256, epochs: int = 60,
                          seed: int = 0, area_m: float = 150.0):
    """Train the Sun-2017-style WMMSE imitator; returns (trainer, data)."""
    dims = (n_pairs * n_pairs,) + tuple(hidden) + (n_pairs,)
    layers = []
    for i, (a, b) in enumerate(zip(dims, dims[1:])):
        act = "sig" if i == len(dims) - 2 else "relu"
        layers.append(DenseSpec(a, b, act))
    network = Network(name="wmmse_imitator", layers=tuple(layers),
                      source="Sun et al. 2017 style learning-to-optimize")
    trainer = MLPTrainer(network, seed=seed)
    xs, ys, gains = make_wmmse_dataset(n_pairs, n_samples, seed=seed,
                                       area_m=area_m)
    trainer.fit(xs, ys, epochs=epochs, seed=seed)
    return trainer, (xs, ys, gains)
