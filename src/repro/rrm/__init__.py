"""RRM benchmark suite, workload generators and classical baselines."""

from .basestation import BaseStationSim, TtiReport
from .dqn import DqnAgent, ReplayBuffer, evaluate_policy, train_dsa_agent
from .scenarios import InterferenceChannel, SpectrumAccessEnv
from .suite import (LEVEL_KEYS, SuiteRunner, network_speedups, network_trace,
                    plan_for, suite_speedups, suite_trace)
from .trainer import MLPTrainer, make_wmmse_dataset, train_power_allocator
from .wmmse import sum_rate, wmmse_power_allocation
# imported last: the `suite` *function* must win over the `.suite` module
# attribute that the import above binds on this package
from .networks import (FULL_SUITE, NETWORK_ORDER, default_scale,
                       scale_network, suite)

__all__ = [
    "FULL_SUITE", "NETWORK_ORDER", "suite", "scale_network", "default_scale",
    "InterferenceChannel", "SpectrumAccessEnv",
    "DqnAgent", "ReplayBuffer", "train_dsa_agent", "evaluate_policy",
    "BaseStationSim", "TtiReport",
    "LEVEL_KEYS", "SuiteRunner", "plan_for", "network_trace", "suite_trace",
    "network_speedups", "suite_speedups",
    "MLPTrainer", "make_wmmse_dataset", "train_power_allocator",
    "sum_rate", "wmmse_power_allocation",
]
