"""Closed-form whole-network latency from static block cycle bounds.

:func:`predict_program_cycles` predicts the exact cycle and instruction
count of a kernel program *without simulating it*: it walks the
instruction stream once, folding constant registers (the generated
kernels compute every loop bound and address from ``li`` chains, never
from data), charging costs from :mod:`repro.analysis.cycles` — whole
blocks at a time when the block's bound is exact and branch/SPR-free,
per instruction otherwise — and collapsing loops in closed form: after
observing that consecutive loop-tail states differ by a constant affine
delta, the remaining iterations are extrapolated arithmetically
(hardware-loop counts are architectural state; conditional back edges
are solved from the affine induction of their operand registers).

Data values loaded from memory are never needed: RRM kernel control
flow is data-independent, which is exactly what makes the latency a
closed form.  Programs whose control flow depends on loaded data raise
:class:`Unpredictable` instead of guessing.

The walk visits each loop body a small constant number of times (three
tail events to prove the delta is affine), so the cost is proportional
to the *static* program size, not the dynamic instruction count — a
one-second ISS run is predicted in well under a millisecond.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.cfg import build_cfg
from ..analysis.cycles import instruction_cost, summarize_blocks
from ..core.cpu import ACC_ALU_OPS, ALU_OPS, BRANCH_OPS, _M32
from ..isa.instructions import Fmt, reads_mask

__all__ = ["PredictedLatency", "Unpredictable", "predict_program_cycles",
           "predict_network_cycles", "certified_trip_counts"]

#: Loop-tail events observed before extrapolating (two equal deltas).
_STEADY = 3
#: Walk-step safety valve: a program this model fits collapses far
#: below it; data-dependent control flow would not, and must not hang.
_MAX_STEPS = 2_000_000
#: Affine extrapolation is only trusted while every folded register
#: stays far from the 2**32 wrap (addresses and counters always do).
_NO_WRAP = 1 << 31


class Unpredictable(Exception):
    """The program's timing is not a static closed form (control flow
    depends on loaded data, or a loop never reaches an affine steady
    state)."""


@dataclass(frozen=True)
class PredictedLatency:
    cycles: int
    instret: int


def _branch_exit_count(m, a, b, da, db):
    """Smallest k >= 1 such that branch ``m`` with operand values
    ``a + da*k``, ``b + db*k`` is *not* taken (the loop exits), or raise
    if the affine induction never exits."""
    d = da - db
    c = a - b
    if m == "bne":
        # Exits at the first k with c + d*k == 0: exact division only.
        if d == 0 or (-c) % d != 0 or (-c) // d < 1:
            raise Unpredictable("bne loop never exits")
        return (-c) // d
    if m == "beq":
        # Was taken, so c == 0; exits as soon as the operands diverge.
        if d == 0:
            raise Unpredictable("beq loop with constant operands")
        return 1
    if m in ("blt", "bltu"):
        # Taken while c + d*k < 0; exits at k = ceil(-c / d), d > 0.
        if d <= 0:
            raise Unpredictable("loop counter never reaches its bound")
        return max(1, -(c // d))
    if m in ("bge", "bgeu"):
        # Taken while c + d*k >= 0; exits at k = floor(c / -d) + 1.
        if d >= 0:
            raise Unpredictable("loop counter never reaches its bound")
        return max(1, c // (-d) + 1)
    raise Unpredictable(m)  # pragma: no cover - BRANCH_OPS is exhaustive


class _Walker:
    def __init__(self, program, wait_states):
        self.program = program
        self.wait = wait_states
        self.cfg = build_cfg(program)
        self.blocks = summarize_blocks(program, self.cfg, wait_states)
        # Blocks whose static bound is the exact cost of any visit:
        # branch/SPR-free with no loop-setup/halt side effects.
        self._fast = [
            b.exact and not b.has_branch and not b.has_spr
            and not any(program[i].mnemonic in
                        ("lp.setup", "lp.setupi", "ebreak")
                        for i in range(b.start, b.end + 1))
            for b in self.blocks]
        self.consts = {r: 0 for r in range(32)}
        self.clk = 0
        self.instret = 0
        self.spr_ready = [0, 0]
        self.hw = [0] * 8
        self.snaps = {}

    # ----------------------------------------------------------- helpers
    def _get(self, r):
        return 0 if r == 0 else self.consts.get(r)

    def _set(self, r, v):
        if r:
            if v is None:
                self.consts.pop(r, None)
            else:
                self.consts[r] = v & _M32

    def _require(self, instr, *regs):
        vals = []
        for r in regs:
            v = self._get(r)
            if v is None:
                raise Unpredictable(
                    f"control depends on non-constant x{r} at "
                    f"0x{instr.addr:x} ({instr})")
            vals.append(v)
        return vals

    # ------------------------------------------------------ instruction
    def _exec(self, idx):
        """Execute instruction ``idx`` symbolically; returns next index
        (before hardware-loop back-edge handling) or None on halt."""
        program = self.program
        instr = program[idx]
        spec = instr.spec
        m = instr.mnemonic
        rd, rs1, rs2, imm = instr.rd, instr.rs1, instr.rs2, instr.imm

        if m == "ebreak":
            self.clk += 1
            self.instret += 1
            return None
        if m in ("lp.setup", "lp.setupi"):
            base = instr.loop * 4
            end_idx = (instr.addr + instr.imm2) // 4
            if m == "lp.setupi":
                count = imm
            else:
                (count,) = self._require(instr, rs1)
            self.hw[base] = 1
            self.hw[base + 1] = idx + 1
            self.hw[base + 2] = end_idx
            self.hw[base + 3] = count
            self.clk += 1
            self.instret += 1
            self.snaps.pop(("hw", base), None)
            # Only register-count loops skip the body when empty; the
            # immediate form always runs the body once (as in the core).
            if m == "lp.setup" and count <= 0:
                self.hw[base] = 0
                return end_idx + 1
            return idx + 1
        if spec.is_branch:
            a, b = self._require(instr, rs1, rs2)
            taken = BRANCH_OPS[m](a, b)
            self.clk += 2 if taken else 1
            self.instret += 1
            tgt = (instr.addr + imm) // 4
            if not taken:
                self.snaps.pop(("br", tgt, idx), None)
            return tgt if taken else idx + 1
        if spec.is_jump:
            self.clk += 2
            self.instret += 1
            if m == "jal":
                self._set(rd, (instr.addr + 4) & _M32)
                return (instr.addr + imm) // 4
            (base,) = self._require(instr, rs1)  # jalr
            self._set(rd, (instr.addr + 4) & _M32)
            return ((base + imm) & _M32 & ~1) // 4
        if m.startswith("pl.sdotsp."):
            k = 0 if m.endswith(".0") else 1
            extra = self.spr_ready[k] - self.clk
            if extra < 0:
                extra = 0
            self.spr_ready[k] = self.clk + extra + 2
            self.clk += 1 + extra + self.wait
            self.instret += 1
            self._set(rd, None)
            a = self._get(rs1)
            self._set(rs1, None if a is None else a + 4)
            return idx + 1
        self.clk += instruction_cost(program, idx, self.wait)
        self.instret += 1
        if m in ("pl.tanh", "pl.sig") or spec.fmt == Fmt.CSR \
                or spec.is_load:
            # Loaded/activation/CSR values are data, never control.
            self._set(rd, None)
            if spec.postinc:
                a = self._get(rs1)
                self._set(rs1, None if a is None else a + imm)
            return idx + 1
        if spec.is_store:
            if spec.postinc:
                a = self._get(rs1)
                self._set(rs1, None if a is None else a + imm)
            return idx + 1
        op = ALU_OPS.get(m)
        if op is not None:
            # Fold when every read register (per the shared hazard
            # definition) is a known constant; x0 is always 0.
            mask = reads_mask(instr)
            known = all(self._get(r) is not None
                        for r in range(1, 32) if (mask >> r) & 1)
            if known:
                a = self._get(rs1) or 0
                b = self._get(rs2) or 0
                third = self._get(rd) or 0 if m in ACC_ALU_OPS else imm
                try:
                    self._set(rd, op(a, b, third))
                except ZeroDivisionError:
                    self._set(rd, None)
            else:
                self._set(rd, None)
            return idx + 1
        if m == "lui":
            self._set(rd, (imm << 12) & _M32)
        elif m == "auipc":
            self._set(rd, (instr.addr + (imm << 12)) & _M32)
        elif rd:
            self._set(rd, None)  # unknown effects never reach control
        return idx + 1

    # ------------------------------------------------ loop extrapolation
    def _snapshot(self):
        return (self.clk, self.instret, dict(self.consts),
                tuple(self.spr_ready), tuple(self.hw))

    def _deltas(self, s0, s1):
        """Affine delta between two tail snapshots, or None."""
        dc = s1[0] - s0[0]
        di = s1[1] - s0[1]
        if set(s0[2]) != set(s1[2]):
            return None
        dregs = {r: s1[2][r] - s0[2][r] for r in s0[2]}
        dspr = tuple(b - a for a, b in zip(s0[3], s1[3]))
        return (dc, di, dregs, dspr)

    def _advance(self, delta, n):
        """Apply ``n`` iterations' worth of ``delta`` to the state."""
        dc, di, dregs, dspr = delta
        self.clk += dc * n
        self.instret += di * n
        for r, d in dregs.items():
            v = self.consts[r] + d * n
            if d and not (0 <= v < _NO_WRAP
                          and 0 <= self.consts[r] < _NO_WRAP):
                # Affine extrapolation is only exact without 2**32 wrap;
                # endpoints in range bound the (monotonic) intermediates.
                raise Unpredictable("affine register leaves no-wrap range")
            self.consts[r] = v
        self.spr_ready = [v + d * n
                          for v, d in zip(self.spr_ready, dspr)]

    def _steady(self, key):
        """Record a tail event; returns the per-iteration delta once two
        consecutive deltas agree, else None."""
        snaps = self.snaps.setdefault(key, [])
        snaps.append(self._snapshot())
        if len(snaps) > _STEADY:
            snaps.pop(0)
        if len(snaps) < _STEADY:
            return None
        d0 = self._deltas(snaps[0], snaps[1])
        d1 = self._deltas(snaps[1], snaps[2])
        if d0 is None or d1 is None or d0[:2] != d1[:2] or \
                d0[2] != d1[2] or d0[3] != d1[3]:
            return None
        # Hardware state must be identical across events apart from the
        # decremented count of the loop being collapsed.
        h0, h1, h2 = snaps[0][4], snaps[1][4], snaps[2][4]
        skip = key[1] + 3 if key[0] == "hw" else None
        for i in range(8):
            if i == skip:
                continue
            if not h0[i] == h1[i] == h2[i]:
                return None
        return d1

    # ------------------------------------------------------------- walk
    def run(self):
        program = self.program
        size = len(program)
        hw = self.hw
        idx = 0
        steps = 0
        block_of = self.cfg.block_of
        blocks = self.blocks
        while 0 <= idx < size:
            steps += 1
            if steps > _MAX_STEPS:
                raise Unpredictable("no closed form found "
                                    "(walk did not collapse)")
            block = blocks[block_of[idx]]
            if idx == block.start and self._fast[block.block_id] and \
                    not (hw[0] and block.start <= hw[2] <= block.end) and \
                    not (hw[4] and block.start <= hw[6] <= block.end):
                # Whole-block fast path: the static bound is exact and
                # nothing in the block touches loops or SPR timing, so
                # charge it in one add and fold registers cost-free.
                clk0, n0 = self.clk, self.instret
                i = block.start
                while i <= block.end:
                    i = self._exec(i)
                self.clk = clk0 + block.min_cycles
                self.instret = n0 + block.n_instrs
                idx = i
                continue
            nxt = self._exec(idx)
            if nxt is None:
                break
            # Hardware-loop back edges (mirrors the run loop exactly).
            for base in (0, 4):
                if hw[base] and idx == hw[base + 2]:
                    hw[base + 3] -= 1
                    if hw[base + 3] > 0:
                        nxt = hw[base + 1]
                        delta = self._steady(("hw", base))
                        if delta is not None and hw[base + 3] > 1:
                            self._advance(delta, hw[base + 3] - 1)
                            hw[base + 3] = 1
                    else:
                        hw[base] = 0
                        self.snaps.pop(("hw", base), None)
                    break
            else:
                if nxt < idx and program[idx].spec.is_branch:
                    key = ("br", nxt, idx)
                    delta = self._steady(key)
                    if delta is not None:
                        instr = program[idx]
                        dregs = delta[2]
                        a, b = self.consts.get(instr.rs1, 0), \
                            self.consts.get(instr.rs2, 0)
                        da = dregs.get(instr.rs1, 0)
                        db = dregs.get(instr.rs2, 0)
                        if 0 <= a < _NO_WRAP and 0 <= b < _NO_WRAP:
                            # In the no-wrap range the exit iteration is
                            # a closed form of the affine induction.
                            k = _branch_exit_count(instr.mnemonic, a, b,
                                                   da, db)
                            if k > 1:
                                self._advance(delta, k - 1)
            idx = nxt
        return PredictedLatency(self.clk, self.instret)


def predict_program_cycles(program,
                           wait_states: int = 0) -> PredictedLatency:
    """Exact cycles/instret of one run of ``program`` from entry 0,
    without simulation; raises :class:`Unpredictable` when the timing is
    not a static closed form."""
    return _Walker(program, wait_states).run()


def predict_network_cycles(network, level_key: str,
                           wait_states: int = 0) -> PredictedLatency:
    """Whole-network inference latency (all timesteps), closed-form.

    Each timestep runs the same generated kernel, and kernel control
    flow is data-independent, so the network latency is ``timesteps``
    times the per-step prediction.
    """
    from ..rrm.suite import plan_for
    from ..isa import assemble
    program = assemble(plan_for(network, level_key).text)
    step = predict_program_cycles(program, wait_states)
    return PredictedLatency(step.cycles * network.timesteps,
                            step.instret * network.timesteps)


def certified_trip_counts(network, level_key: str) -> dict:
    """Absint-proven constant trip counts ``{branch_idx: N}`` for the
    generated kernel of ``(network, level_key)``.

    These are *static facts*, not walker extrapolations: the abstract
    interpreter proves them sound for every execution, the ISS
    observer harness cross-validates them against real back-edge
    execution counts, and ``repro.core.turbo`` seeds its vector-window
    hints with them."""
    from ..analysis.absint import proven_trip_counts
    from ..analysis.footprint import Footprint
    from ..isa import assemble
    from ..rrm.suite import plan_for
    plan = plan_for(network, level_key)
    return proven_trip_counts(assemble(plan.text),
                              Footprint.from_plan(plan))
