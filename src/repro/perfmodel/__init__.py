"""Analytical performance model.

The exact model is the static count analysis performed by
:class:`repro.kernels.common.AsmBuilder` during code generation; the
convenience functions re-exported here (from :mod:`repro.rrm.suite`)
evaluate it per network and per suite without executing a single simulated
instruction.  :mod:`repro.perfmodel.formulas` provides independent
closed-form marginal costs used to cross-validate the builder, and
:mod:`repro.perfmodel.static_latency` predicts exact whole-network cycle
counts from the :mod:`repro.analysis.cycles` block bounds, again without
simulation.
"""

from ..rrm.suite import (network_speedups, network_trace, plan_for,
                         suite_speedups, suite_trace)
from .formulas import matvec_marginal
from .roofline import (calibrate_host, network_bytes, network_ops,
                       operational_intensity, roofline_point,
                       roofline_report)
from .static_latency import (PredictedLatency, Unpredictable,
                             certified_trip_counts,
                             predict_network_cycles,
                             predict_program_cycles)

__all__ = ["plan_for", "network_trace", "suite_trace", "network_speedups",
           "suite_speedups", "matvec_marginal",
           "PredictedLatency", "Unpredictable", "predict_network_cycles",
           "predict_program_cycles", "certified_trip_counts",
           "network_ops", "network_bytes", "operational_intensity",
           "calibrate_host", "roofline_point", "roofline_report"]
