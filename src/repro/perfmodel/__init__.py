"""Analytical performance model.

The exact model is the static count analysis performed by
:class:`repro.kernels.common.AsmBuilder` during code generation; the
convenience functions re-exported here (from :mod:`repro.rrm.suite`)
evaluate it per network and per suite without executing a single simulated
instruction.  :mod:`repro.perfmodel.formulas` provides independent
closed-form marginal costs used to cross-validate the builder.
"""

from ..rrm.suite import (network_speedups, network_trace, plan_for,
                         suite_speedups, suite_trace)
from .formulas import matvec_marginal

__all__ = ["plan_for", "network_trace", "suite_trace", "network_speedups",
           "suite_speedups", "matvec_marginal"]
