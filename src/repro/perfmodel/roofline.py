"""Roofline capacity model for the serving host.

The classic roofline (Williams et al.) bounds attainable throughput by
``min(peak_compute, bandwidth * operational_intensity)``.  Here the
"kernel" is one whole network inference as the AOT backend executes it
(:mod:`repro.serve.aot`): the op count is the network's exact MAC count
(2 ops per MAC), and the bytes moved are the int16 Q3.12 footprint the
paper's datapath streams — weights + biases once per inference, input /
output / recurrent state once per timestep.  Operational intensity is
their ratio, so each suite network lands at a fixed x-position on the
roofline and the model converts straight into a per-network request/s
ceiling for capacity planning.

Ceilings come from :func:`calibrate_host`, a two-point microbenchmark of
the same primitives the fused plans actually use (float64 GEMM for the
compute roof, large-array copy for the bandwidth roof), so
achieved-vs-ceiling percentages in ``serve-bench``/``cluster-bench``
output are honest: an 80%-of-roof network is truly compute-bound on this
host, not on a spec sheet.  Pass explicit ``peak_flops``/``bandwidth``
to pin the ceilings (tests do, for determinism).
"""

from __future__ import annotations

import time

import numpy as np

from ..nn.network import ConvSpec, DenseSpec, LstmSpec, Network

__all__ = ["network_ops", "network_bytes", "operational_intensity",
           "calibrate_host", "roofline_point", "roofline_report"]

#: Bytes per element of the Q3.12 datapath (int16 weights/activations).
_ELEM_BYTES = 2


def network_ops(network: Network) -> int:
    """Arithmetic ops per inference: 2 per MAC (multiply + accumulate).

    Exact, from the layer specs — the same count the paper uses for its
    MAC/cycle efficiency figures.
    """
    return 2 * network.macs_per_inference


def _layer_param_elems(spec) -> int:
    if isinstance(spec, DenseSpec):
        return spec.n_out * spec.n_in + spec.n_out
    if isinstance(spec, LstmSpec):
        return 4 * spec.n * (spec.m + spec.n) + 4 * spec.n
    if isinstance(spec, ConvSpec):
        return spec.cout * spec.cin * spec.k ** 2 + spec.cout
    raise TypeError(f"unknown layer spec {spec!r}")


def _layer_stream_elems(spec) -> int:
    """Activation traffic per timestep: input read + output write, plus
    recurrent state read+write for LSTM layers."""
    elems = spec.in_size + spec.out_size
    if isinstance(spec, LstmSpec):
        elems += 4 * spec.n  # h read, c read, h write, c write
    return elems


def network_bytes(network: Network) -> int:
    """Bytes moved per inference on the int16 datapath.

    Weights and biases stream once per inference (no weight reuse
    across requests is assumed — the conservative, paper-faithful
    choice for small-batch serving); activations and recurrent state
    move once per timestep.
    """
    params = sum(_layer_param_elems(s) for s in network.layers)
    stream = sum(_layer_stream_elems(s) for s in network.layers)
    return _ELEM_BYTES * (params + stream * network.timesteps)


def operational_intensity(network: Network) -> float:
    """Ops per byte moved — the network's x-position on the roofline."""
    return network_ops(network) / network_bytes(network)


_CALIBRATION: dict | None = None


def calibrate_host(size: int = 384, repeats: int = 3,
                   copy_mb: int = 32) -> dict:
    """Measure this host's compute and bandwidth roofs (cached).

    * ``peak_flops`` — float64 GEMM on a ``size x size`` problem, the
      exact primitive the AOT backend's hot loop is built from.
    * ``bandwidth`` — bytes/s of a large out-of-cache array copy.

    Returns ``{"peak_flops", "bandwidth_bytes_s", "ridge_oi"}`` where
    ``ridge_oi`` is the intensity at which the two roofs intersect.
    """
    global _CALIBRATION
    if _CALIBRATION is not None:
        return _CALIBRATION
    rng = np.random.default_rng(2020)
    a = rng.standard_normal((size, size))
    b = rng.standard_normal((size, size))
    out = np.empty((size, size))
    np.matmul(a, b, out=out)  # warm-up
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        np.matmul(a, b, out=out)
        best = min(best, time.perf_counter() - t0)
    peak = 2 * size ** 3 / best if best > 0 else 0.0

    n = copy_mb * (1 << 20) // 8
    src = rng.standard_normal(n)
    dst = np.empty(n)
    np.copyto(dst, src)  # warm-up
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        np.copyto(dst, src)
        best = min(best, time.perf_counter() - t0)
    # One read + one write stream.
    bandwidth = 2 * n * 8 / best if best > 0 else 0.0

    _CALIBRATION = {
        "peak_flops": peak,
        "bandwidth_bytes_s": bandwidth,
        "ridge_oi": peak / bandwidth if bandwidth > 0 else 0.0,
    }
    return _CALIBRATION


def roofline_point(network: Network, peak_flops: float | None = None,
                   bandwidth: float | None = None,
                   achieved_rps: float | None = None) -> dict:
    """One network's roofline row.

    ``ceiling_rps`` converts the attainable ops/s at the network's
    intensity into whole inferences per second; ``bound`` names the
    binding roof.  With ``achieved_rps`` the row also carries the
    achieved ops/s and percent-of-ceiling.
    """
    if peak_flops is None or bandwidth is None:
        cal = calibrate_host()
        peak_flops = peak_flops if peak_flops is not None \
            else cal["peak_flops"]
        bandwidth = bandwidth if bandwidth is not None \
            else cal["bandwidth_bytes_s"]
    ops = network_ops(network)
    nbytes = network_bytes(network)
    oi = ops / nbytes
    attainable = min(peak_flops, bandwidth * oi)
    point = {
        "ops": ops,
        "bytes": nbytes,
        "oi": oi,
        "bound": "compute" if peak_flops <= bandwidth * oi
        else "memory",
        "attainable_ops_s": attainable,
        "ceiling_rps": attainable / ops if ops else 0.0,
    }
    if achieved_rps is not None:
        point["achieved_rps"] = achieved_rps
        point["achieved_ops_s"] = achieved_rps * ops
        point["pct_of_ceiling"] = (100.0 * achieved_rps
                                   / point["ceiling_rps"]
                                   if point["ceiling_rps"] > 0 else 0.0)
    return point


def roofline_report(networks, achieved_rps: dict | None = None,
                    peak_flops: float | None = None,
                    bandwidth: float | None = None) -> dict:
    """Per-network roofline table for a bench report.

    ``achieved_rps`` maps network name to measured request/s (missing
    networks get ceiling-only rows).
    """
    if peak_flops is None or bandwidth is None:
        cal = calibrate_host()
        peak_flops = peak_flops if peak_flops is not None \
            else cal["peak_flops"]
        bandwidth = bandwidth if bandwidth is not None \
            else cal["bandwidth_bytes_s"]
    achieved_rps = achieved_rps or {}
    return {
        "host": {
            "peak_flops": peak_flops,
            "bandwidth_bytes_s": bandwidth,
            "ridge_oi": peak_flops / bandwidth if bandwidth > 0
            else 0.0,
        },
        "per_network": {
            network.name: roofline_point(
                network, peak_flops=peak_flops, bandwidth=bandwidth,
                achieved_rps=achieved_rps.get(network.name))
            for network in networks
        },
    }
