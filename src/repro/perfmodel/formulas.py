"""Closed-form inner-loop cost formulas, independent of the code generators.

The authoritative performance model is the :class:`AsmBuilder` static count
(exact, validated against the ISS).  These formulas express the *marginal*
cost of one more input element analytically, straight from the schedules
described in the paper; tests difference the builder counts against them,
so the generators, the builder and the written-down algebra must all agree.

All figures are per output-FM tile pass unless noted:

==========  =======================  =========================
level       instructions / element   cycles / element
==========  =======================  =========================
a           8 per MAC                9 per MAC (taken branch)
b           3 per pair               4 per pair (1 load stall)
c (tile N)  (2N+1) per pair          (2N+1) per pair
d (tile N)  (N+1) per pair           (N+2) per pair
e (tile N)  (2N+2) per 2 pairs       (2N+2) per 2 pairs
==========  =======================  =========================
"""

from __future__ import annotations

__all__ = ["matvec_marginal"]


def matvec_marginal(level_key: str, tile: int = 10) -> dict:
    """Marginal (instructions, cycles) per *additional input element*.

    For level a the unit is one input channel per output row; for the
    SIMD levels it is one packed pair (two input channels) per tile pass.
    Returns a dict with ``unit_elems`` (input elements per unit),
    ``instrs`` and ``cycles`` (per unit, per tile pass), and ``macs``
    (MAC operations per unit across the tile).
    """
    if level_key == "a":
        return {"unit_elems": 1, "instrs": 8, "cycles": 9, "macs": 1}
    if level_key == "b":
        return {"unit_elems": 2, "instrs": 3, "cycles": 4, "macs": 2}
    if level_key == "c":
        return {"unit_elems": 2, "instrs": 2 * tile + 1,
                "cycles": 2 * tile + 1, "macs": 2 * tile}
    if level_key == "d":
        return {"unit_elems": 2, "instrs": tile + 1,
                "cycles": tile + 2, "macs": 2 * tile}
    if level_key == "e":
        return {"unit_elems": 4, "instrs": 2 * tile + 2,
                "cycles": 2 * tile + 2, "macs": 4 * tile}
    raise ValueError(f"unknown level {level_key!r}")
