"""Learning-to-optimize power allocation on the extended core.

The scenario of benchmark [2] (Sun et al. 2017), end to end:

1. generate a dense multi-cell interference scenario (the paper's
   ultra-dense 5G motivation),
2. run classical WMMSE as the teacher,
3. train a small MLP to imitate it (numpy SGD),
4. quantize the MLP to Q3.12 and execute it *on the simulated RISC-V
   core with the RNN extensions*,
5. compare achieved sum rates and report the core-level latency and
   energy per allocation decision.

    python examples/power_allocation.py
"""

import numpy as np

from repro.energy import EnergyModel, FREQ_HZ
from repro.fixedpoint import Q3_12
from repro.kernels import NetworkProgram
from repro.nn import quantize_params
from repro.rrm import (InterferenceChannel, sum_rate, train_power_allocator,
                       suite_trace)

N_PAIRS = 4
AREA_M = 50.0   # dense deployment: interference actually matters


def main():
    print("training the WMMSE imitator (numpy SGD)...")
    trainer, _ = train_power_allocator(
        n_pairs=N_PAIRS, hidden=(64, 32), n_samples=768, epochs=120, seed=3,
        area_m=AREA_M)
    network = trainer.network
    params_q = quantize_params(trainer.params)

    print("lowering to the extended core (level e kernels)...")
    program = NetworkProgram(network, params_q, "e")
    program_base = NetworkProgram(network, params_q, "a")

    scenario = InterferenceChannel(N_PAIRS, area_m=AREA_M, seed=99)
    rates = {"core (Q3.12)": [], "core, on/off": [], "wmmse": [],
             "full power": [], "random": []}
    rng = np.random.default_rng(7)
    n_eval = 25
    for _ in range(n_eval):
        gains = scenario.gain_matrix()
        feats = scenario.features(gains, N_PAIRS * N_PAIRS)
        out = program.step(Q3_12.from_float(feats))
        p_core = np.clip(Q3_12.to_float(out), 0.0, 1.0)
        from repro.rrm import wmmse_power_allocation
        rates["core (Q3.12)"].append(sum_rate(gains, p_core))
        # WMMSE solutions are near-binary: thresholding the network output
        # (the usual deployment policy) recovers most of the teacher
        rates["core, on/off"].append(
            sum_rate(gains, (p_core > 0.5).astype(float)))
        rates["wmmse"].append(sum_rate(gains,
                                       wmmse_power_allocation(gains)))
        rates["full power"].append(sum_rate(gains, np.ones(N_PAIRS)))
        rates["random"].append(sum_rate(gains, rng.uniform(0, 1, N_PAIRS)))

    print(f"\naverage sum rate over {n_eval} dense-cell realizations "
          "(bit/s/Hz):")
    for name, values in rates.items():
        print(f"  {name:<14s} {np.mean(values):6.3f}")

    cycles_ext = program.plan.cycles_per_step
    cycles_base = program_base.plan.cycles_per_step
    model = EnergyModel(suite_trace("a"), suite_trace("e"))
    power_mw = model.power_mw(program.plan.trace)
    latency_us = cycles_ext / FREQ_HZ * 1e6
    energy_nj = power_mw * 1e-3 * latency_us * 1e3
    print(f"\ncore-level cost per allocation decision "
          f"({network.macs_per_step} MACs):")
    print(f"  extended core : {cycles_ext:6d} cycles = {latency_us:6.2f} us "
          f"@ 380 MHz, ~{energy_nj:.1f} nJ")
    print(f"  baseline core : {cycles_base:6d} cycles "
          f"({cycles_base / cycles_ext:.1f}x slower)")
    print("\nRRM loops run at millisecond granularity: the extended core "
          "leaves >99% of each slot free.")


if __name__ == "__main__":
    main()
