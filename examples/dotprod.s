# Standalone assembly demo for `python -m repro run examples/dotprod.s`:
# a Q3.12 dot product with the paper's pl.sdotsp.h load-and-compute
# instruction, data carried in a .data section, cycle count self-measured
# through the mcycle CSR (result lands in a2, cycle cost in a7).

.data
weights: .half 4096, 2048, -1024, 512, 4096, -4096, 100, -100
inputs:  .half 4096, 4096, 2048, 2048, -4096, 4096, 3000, 3000

.text
    la a0, weights
    la t1, inputs
    li a2, 0
    csrr a6, mcycle
    pl.sdotsp.h.0 x0, a0, x0      # preload SPR0
    lp.setupi 0, 4, done
    p.lw t0, 4(t1!)
    pl.sdotsp.h.0 a2, a0, t0
done:
    csrr a7, mcycle
    sub a7, a7, a6
    srai a2, a2, 12               # requantize back to Q3.12
    ebreak
