"""End-to-end base-station TTI loop with the policy network on the core.

Every 1 ms TTI: the channel fades, features go to the Q3.12 policy network
executing on the simulated extended RISC-V core, the allocation is
applied, and the sum rate + core budget are accounted.  Compares the
neural policy (thresholded, the usual deployment form) against WMMSE and
full power, and reports how little of the TTI the core actually needs —
the paper's "fully programmable and efficient IP for 5G RRM SoCs" claim
made concrete.

    python examples/basestation.py
"""

import numpy as np

from repro.fixedpoint import Q3_12
from repro.kernels import NetworkProgram
from repro.nn import quantize_params
from repro.rrm import train_power_allocator
from repro.rrm.basestation import BaseStationSim

N_PAIRS = 4
AREA_M = 60.0


def main():
    print("training the power-control policy (WMMSE imitation)...")
    trainer, _ = train_power_allocator(
        n_pairs=N_PAIRS, hidden=(64, 32), n_samples=512, epochs=100,
        seed=11, area_m=AREA_M)
    program = NetworkProgram(trainer.network,
                             quantize_params(trainer.params), "e")

    def core_policy(feats):
        out = program.step(Q3_12.from_float(feats))
        return (Q3_12.to_float(out) > 0.5).astype(float)

    sim = BaseStationSim(N_PAIRS, area_m=AREA_M, tti_us=1000.0, seed=42)
    report = sim.run(core_policy, n_slots=40,
                     cycles_per_slot=program.plan.cycles_per_step)

    print(f"\n{report.slots} TTIs of 1 ms, {N_PAIRS} links, dense cell:")
    print(f"  neural policy (on core) : {report.mean_rate:6.3f} bit/s/Hz")
    print(f"  WMMSE (iterative)       : {report.mean_rate_wmmse:6.3f}")
    print(f"  full power              : {report.mean_rate_full:6.3f}")
    print(f"  policy vs WMMSE         : {report.rate_vs_wmmse:6.1%}")
    print(f"\n  core inference per TTI  : {report.cycles_per_slot:.0f} "
          f"cycles = {report.core_utilization:.2%} of the TTI @ 380 MHz")
    print("  -> the extended core schedules the cell and stays "
          f"{1 - report.core_utilization:.1%} idle for other RRM tasks.")


if __name__ == "__main__":
    main()
