"""A tour of the ISA extensions: what the paper's instructions actually do.

Walks through:

1. the Table II assembly listings straight from the kernel generators,
2. a cycle-accurate execution trace of the VLIW inner loop,
3. the pl.tanh / pl.sig piecewise-linear approximation accuracy,
4. encode/decode of the new instructions into the custom opcode space.

    python examples/isa_tour.py
"""

import numpy as np

from repro.core import Cpu, Memory
from repro.eval.table2 import format_table2
from repro.fixedpoint import Q3_12, TANH_TABLE, evaluate_error
from repro.isa import assemble, disassemble_word, encode


def show_table2():
    print(format_table2())
    print()


def show_vliw_trace():
    print("=" * 70)
    print("cycle trace of the pl.sdotsp.h inner loop (2 rows x 4 pairs)")
    print("=" * 70)
    rng = np.random.default_rng(0)
    w = rng.integers(-1000, 1000, (2, 8))
    x = rng.integers(-1000, 1000, 8)
    mem = Memory(1 << 16)
    mem.store_halfwords(0x1000, w[0])
    mem.store_halfwords(0x1100, w[1])
    mem.store_halfwords(0x2000, x)
    src = """
        li a0, 0x1000
        li a1, 0x1100
        li t1, 0x2000
        pl.sdotsp.h.0 x0, a0, x0     # preload SPR0 <- w0 stream
        pl.sdotsp.h.1 x0, a1, x0     # preload SPR1 <- w1 stream
        lp.setupi 0, 4, end
        p.lw t0, 4(t1!)              # x pair (1 bubble: next op reads t0)
        pl.sdotsp.h.0 s0, a0, t0     # row0 += SPR0 . x, SPR0 <- next w0
        pl.sdotsp.h.1 s1, a1, t0     # row1 += SPR1 . x, SPR1 <- next w1
    end:
        ebreak
    """
    cpu = Cpu(assemble(src), mem)
    trace = cpu.run()
    print(f"result row0 = {cpu.reg_s(8)}  (numpy: {np.dot(w[0], x)})")
    print(f"result row1 = {cpu.reg_s(9)}  (numpy: {np.dot(w[1], x)})")
    print(f"\nper-mnemonic cycles: 16 MACs in {trace.total_cycles} cycles")
    for name, cyc, cnt in trace.top(8):
        print(f"  {name:<12s} {cyc:>4d} cycles / {cnt:>3d} instrs")
    print()


def show_pla_accuracy():
    print("=" * 70)
    print("pl.tanh: 32-interval PLA over [-4, 4] in Q3.12 (Alg. 2)")
    print("=" * 70)
    err = evaluate_error(TANH_TABLE)
    print(f"MSE {err['mse']:.2e}, max error {err['max_err']:.2e} over "
          f"{err['n_points']} representable points")
    cpu = Cpu(assemble("pl.tanh a1, a0\nebreak\n"))
    print(f"{'x':>8s} {'pl.tanh':>10s} {'math.tanh':>10s} {'err':>10s}")
    for x in (-5.0, -2.0, -0.5, 0.0, 0.5, 1.0, 2.0, 3.9, 4.1):
        cpu.reset()
        cpu.set_reg(10, Q3_12.from_float(x) & 0xFFFFFFFF)
        cpu.run()
        approx = Q3_12.to_float(cpu.reg_s(11))
        exact = float(np.tanh(x))
        print(f"{x:>8.2f} {approx:>10.5f} {exact:>10.5f} "
              f"{approx - exact:>10.1e}")
    print()


def show_encodings():
    print("=" * 70)
    print("custom-opcode encodings of the new instructions")
    print("=" * 70)
    prog = assemble("""
        pl.tanh a1, a0
        pl.sig a2, a0
        pl.sdotsp.h.0 s0, a0, t0
        pl.sdotsp.h.1 s1, a1, t0
        p.lw t0, 4(t1!)
        lp.setupi 0, 16, end
        pv.sdotsp.h s0, t0, t1
    end:
        ebreak
    """)
    for instr in prog:
        word = encode(instr)
        print(f"  0x{word:08x}  {disassemble_word(word)}")
    print()


def main():
    show_table2()
    show_vliw_trace()
    show_pla_accuracy()
    show_encodings()


if __name__ == "__main__":
    main()
