"""Dynamic spectrum access: a *trained* DQN running on the core.

A Naparstek-&-Cohen / Wang-et-al. style ([14], [17]) slotted multichannel
setting: channels are occupied by two-state Markov primary users; the
agent observes the previous slot's occupancy and picks a channel.

The pipeline mirrors a real deployment:

1. train a deep Q-network with the numpy DQN loop (epsilon-greedy,
   replay buffer, target network) — ``repro.rrm.dqn``;
2. quantize it to Q3.12;
3. run the policy *on the simulated extended RISC-V core*, slot by slot,
   and compare against the float policy and a random baseline;
4. report the per-slot core cost.

    python examples/spectrum_access.py
"""

import numpy as np

from repro.energy import FREQ_HZ
from repro.fixedpoint import Q3_12
from repro.kernels import NetworkProgram
from repro.nn import quantize_params
from repro.rrm import evaluate_policy, train_dsa_agent

N_CHANNELS = 8
N_SLOTS = 400


def main():
    print("training the DQN (numpy: replay buffer + target network)...")
    agent = train_dsa_agent(n_channels=N_CHANNELS, episodes=8,
                            steps_per_episode=250, seed=7)

    print("quantizing to Q3.12 and lowering to the core (level e)...")
    params = quantize_params(agent.trainer.params)
    program = NetworkProgram(agent.network, params, "e")

    def core_policy(obs):
        q = program.step(Q3_12.from_float(obs))
        return int(np.argmax(q))

    def float_policy(obs):
        return int(np.argmax(agent.q_values(obs)[0]))

    rng = np.random.default_rng(1)
    rate_core = evaluate_policy(core_policy, N_CHANNELS, N_SLOTS)
    rate_float = evaluate_policy(float_policy, N_CHANNELS, N_SLOTS)
    rate_random = evaluate_policy(lambda obs: rng.integers(N_CHANNELS),
                                  N_CHANNELS, N_SLOTS)

    cycles = program.plan.cycles_per_step
    print(f"\n{N_SLOTS} slots on {N_CHANNELS} Markov channels:")
    print(f"  DQN on the core (Q3.12) : {rate_core:6.1%} success")
    print(f"  DQN in float            : {rate_float:6.1%}")
    print(f"  random policy           : {rate_random:6.1%}")
    print(f"\n  core cost per slot      : {cycles} cycles = "
          f"{cycles / FREQ_HZ * 1e6:.2f} us @ 380 MHz")
    print(f"  total simulated instructions: {program.cpu.instret}")
    assert rate_core > rate_random + 0.2, "the agent should beat random"


if __name__ == "__main__":
    main()
