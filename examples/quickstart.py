"""Quickstart: run one fully-connected layer at all five optimization
levels of the paper and watch the speedup build up.

    python examples/quickstart.py

The script builds a 64x48 Q3.12 matvec, lowers it to RISC-V assembly at
each of Table I's optimization stages, executes it on the simulated
RI5CY-style core, checks the outputs bit-exactly against the golden
fixed-point model, and prints the per-stage cycle counts.
"""

import numpy as np

from repro.core import Cpu, Memory
from repro.fixedpoint import Q3_12
from repro.isa import assemble
from repro.kernels import (AsmBuilder, LEVELS, MatvecJob, gen_matvec,
                           padded_row)
from repro.nn import dense_fixed

N_IN, N_OUT = 64, 48


def run_level(level_key, w, x, bias):
    level = LEVELS[level_key]
    row_hw = padded_row(N_IN, level_key)
    builder = AsmBuilder()
    job = MatvecJob(n_in=N_IN, n_out=N_OUT, w_addr=0x8000, x_addr=0x2000,
                    b_addr=0x3000, out_addr=0x4000, row_halfwords=row_hw,
                    acc_addr=0x0FF0)
    gen_matvec(builder, level, job)
    builder.emit("ebreak")

    mem = Memory(1 << 17)
    padded = np.zeros((N_OUT, row_hw), dtype=np.int64)
    padded[:, :N_IN] = w
    mem.store_halfwords(0x8000, padded)
    xp = np.zeros(row_hw, dtype=np.int64)
    xp[:N_IN] = x
    mem.store_halfwords(0x2000, xp)
    mem.store_halfwords(0x3000, bias)

    cpu = Cpu(assemble(builder.text()), mem, extensions=level.extensions)
    trace = cpu.run()
    out = mem.load_halfwords(0x4000, N_OUT)
    assert np.array_equal(out, dense_fixed(w, x, bias)), "golden mismatch!"
    return trace


def main():
    rng = np.random.default_rng(2020)
    w = Q3_12.from_float(rng.uniform(-0.4, 0.4, (N_OUT, N_IN)))
    x = Q3_12.from_float(rng.uniform(-1.0, 1.0, N_IN))
    bias = Q3_12.from_float(rng.uniform(-0.1, 0.1, N_OUT))

    print(f"{N_OUT}x{N_IN} fixed-point (Q3.12) fully-connected layer, "
          f"{N_OUT * N_IN} MACs\n")
    print(f"{'stage':<30s}{'cycles':>8s}{'instrs':>8s}{'speedup':>9s}"
          f"{'MAC/cyc':>9s}")
    baseline = None
    for key in "abcde":
        trace = run_level(key, w, x, bias)
        cycles = trace.total_cycles
        baseline = baseline or cycles
        print(f"{LEVELS[key].column:<30s}{cycles:>8d}"
              f"{trace.total_instrs:>8d}{baseline / cycles:>8.1f}x"
              f"{N_OUT * N_IN / cycles:>9.2f}")
    print("\nAll five stages produced bit-identical outputs "
          "(checked against the golden fixed-point model).")


if __name__ == "__main__":
    main()
