"""AsmBuilder static count analysis vs. ISS execution on hand-built
snippets, plus the loop/label bookkeeping rules."""

import pytest

from repro.core import Cpu, Memory
from repro.isa import assemble
from repro.kernels import AsmBuilder, DataLayout


def check_equivalence(build):
    """Run `build(b)` through both the builder and the ISS; compare."""
    builder = AsmBuilder()
    build(builder)
    builder.emit("ebreak")
    cpu = Cpu(assemble(builder.text()), Memory(1 << 16))
    iss = cpu.run()
    assert iss == builder.trace
    return iss


class TestStraightLine:
    def test_alu_sequence(self):
        def build(b):
            b.li("a0", 5)
            b.li("a1", 0x12345)
            b.emit("add a2, a0, a1")
        check_equivalence(build)

    def test_load_use_stall_detected(self):
        def build(b):
            b.li("a0", 0x100)
            b.emit("lw a1, 0(a0)")
            b.emit("addi a2, a1, 1")
        iss = check_equivalence(build)
        assert iss.cycles["lw"] == 2

    def test_no_false_stall(self):
        def build(b):
            b.li("a0", 0x100)
            b.emit("lw a1, 0(a0)")
            b.emit("addi a2, a0, 1")
        iss = check_equivalence(build)
        assert iss.cycles["lw"] == 1

    def test_jump_cost(self):
        def build(b):
            b.emit("jal x0, 4")
            b.emit("addi a0, a0, 1")
        iss = check_equivalence(build)
        assert iss.cycles["jal"] == 2


class TestLoops:
    def test_hwloop_counts(self):
        def build(b):
            b.li("a0", 0x100)
            with b.hwloop(0, 17):
                b.emit("addi a1, a1, 1")
                b.emit("addi a2, a2, 2")
        iss = check_equivalence(build)
        assert iss.instrs["addi"] == 2 * 17 + 1  # + the li

    def test_nested_hwloops(self):
        def build(b):
            with b.hwloop(1, 5):
                b.emit("addi a1, a1, 1")
                with b.hwloop(0, 3):
                    b.emit("addi a2, a2, 1")
                b.emit("addi a3, a3, 1")
        iss = check_equivalence(build)
        assert iss.instrs["addi"] == 5 + 15 + 5

    def test_sw_loop_branch_accounting(self):
        def build(b):
            b.li("a0", 8)
            with b.sw_loop(8) as loop:
                b.emit("addi a0, a0, -1")
                loop.branch_back("bne", "a0", "x0")
        iss = check_equivalence(build)
        assert iss.instrs["bne"] == 8
        assert iss.cycles["bne"] == 2 * 7 + 1

    def test_nested_sw_loops(self):
        def build(b):
            b.li("a0", 3)
            with b.sw_loop(3) as outer:
                b.li("a1", 4)
                with b.sw_loop(4) as inner:
                    b.emit("addi a1, a1, -1")
                    inner.branch_back("bne", "a1", "x0")
                b.emit("addi a0, a0, -1")
                outer.branch_back("bne", "a0", "x0")
        check_equivalence(build)

    def test_stall_across_loop_iterations_via_wrap(self):
        # load at position N-2, consumer at N-1: same-iteration stall only
        def build(b):
            b.li("a0", 0x100)
            with b.hwloop(0, 6):
                b.emit("lw a1, 0(a0)")
                b.emit("addi a2, a1, 1")
        iss = check_equivalence(build)
        assert iss.cycles["lw"] == 12

    def test_load_before_loop_consumer_inside(self):
        def build(b):
            b.li("a0", 0x100)
            b.emit("lw a1, 0(a0)")
            with b.hwloop(0, 4):
                b.emit("addi a2, a1, 1")
        # the lp.setupi separates the pair: no stall on either side
        iss = check_equivalence(build)
        assert iss.cycles["lw"] == 1

    def test_hwloop_count_limit(self):
        b = AsmBuilder()
        with pytest.raises(ValueError):
            b.hwloop(0, 512)
        with pytest.raises(ValueError):
            b.hwloop(0, 0)
        with pytest.raises(ValueError):
            b.hwloop(2, 5)

    def test_sw_loop_requires_branch_back(self):
        b = AsmBuilder()
        with pytest.raises(RuntimeError):
            with b.sw_loop(3):
                b.emit("addi a0, a0, 1")

    def test_branch_outside_helper_needs_counts(self):
        b = AsmBuilder()
        b.label("x")
        with pytest.raises(ValueError):
            b.emit("bne a0, a1, x")


class TestVliwAndActivations:
    def test_pl_sdotsp_sequence(self):
        def build(b):
            b.li("a0", 0x1000)
            b.li("a1", 0x1100)
            b.li("t1", 0x2000)
            b.emit("pl.sdotsp.h.0 x0, a0, x0")
            b.emit("pl.sdotsp.h.1 x0, a1, x0")
            with b.hwloop(0, 9):
                b.emit("p.lw t0, 4(t1!)")
                b.emit("pl.sdotsp.h.0 s0, a0, t0")
                b.emit("pl.sdotsp.h.1 s1, a1, t0")
        iss = check_equivalence(build)
        # the x-pair load feeds the first sdotsp: one stall per iteration
        assert iss.cycles["lw!"] == 18

    def test_activation_instruction_costs(self):
        def build(b):
            b.li("a0", 1000)
            b.emit("pl.tanh a1, a0")
            b.emit("pl.sig a2, a0")
        iss = check_equivalence(build)
        assert iss.cycles["tanh,sig"] == 2


class TestDataLayout:
    def test_alloc_sequence_and_padding(self):
        layout = DataLayout(base=0x1000)
        a = layout.alloc_half("a", 3)
        b = layout.alloc_half("b", 1)
        assert a == 0x1000
        assert b >= a + 6 + 8  # guard padding
        assert layout.addr("a") == a
        assert layout.used_bytes > 0

    def test_duplicate_rejected(self):
        layout = DataLayout()
        layout.alloc_word("x", 1)
        with pytest.raises(ValueError):
            layout.alloc_word("x", 1)

    def test_overflow_guard(self):
        layout = DataLayout(base=0x1000, size_bytes=0x1040)
        layout.alloc_half("ok", 8)
        with pytest.raises(MemoryError):
            layout.alloc_half("toobig", 100)

    def test_alignment(self):
        layout = DataLayout(base=0x1000)
        layout.alloc("odd", 3)
        addr = layout.alloc("next", 4)
        assert addr % 4 == 0
