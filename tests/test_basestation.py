"""Base-station scheduler simulation."""

import numpy as np
import pytest

from repro.energy.model import FREQ_HZ
from repro.rrm.basestation import BaseStationSim, TtiReport


class TestBaseStationSim:
    def test_analytic_policies(self):
        sim = BaseStationSim(4, area_m=50.0, seed=0)
        full = sim.run(lambda feats: np.ones(4), n_slots=10)
        assert full.slots == 10
        assert full.mean_rate == pytest.approx(full.mean_rate_full)
        assert full.mean_rate_wmmse >= full.mean_rate_full * 0.95

    def test_wmmse_policy_matches_reference_column(self):
        # a policy cannot see the gains (only features), so even a strong
        # one stays below the oracle column on dense cells
        sim = BaseStationSim(4, area_m=50.0, seed=1)
        report = sim.run(lambda feats: np.full(4, 0.5), n_slots=10)
        assert report.mean_rate <= report.mean_rate_wmmse + 1e-9

    def test_utilization_accounting(self):
        sim = BaseStationSim(3, tti_us=500.0, seed=2)
        report = sim.run(lambda feats: np.ones(3), n_slots=5,
                         cycles_per_slot=1900.0)
        expected = (1900.0 / FREQ_HZ) / 500e-6
        assert report.core_utilization == pytest.approx(expected)
        assert report.core_utilization < 0.02

    def test_policy_output_validated(self):
        sim = BaseStationSim(4, seed=3)
        with pytest.raises(ValueError):
            sim.run(lambda feats: np.ones(3), n_slots=2)

    def test_power_clipped_to_budget(self):
        sim = BaseStationSim(2, area_m=50.0, seed=4)
        wild = sim.run(lambda feats: np.array([5.0, -3.0]), n_slots=4)
        capped = sim.run(lambda feats: np.array([1.0, 0.0]), n_slots=4)
        # same seeded scenario drops, so clipping makes them... different
        # realizations; just assert rates are finite and sane
        assert 0 <= wild.mean_rate
        assert 0 <= capped.mean_rate

    def test_tti_validation(self):
        with pytest.raises(ValueError):
            BaseStationSim(4, tti_us=0.0)

    def test_report_ratios(self):
        report = TtiReport(slots=1, mean_rate=2.0, mean_rate_wmmse=4.0,
                           mean_rate_full=1.0, cycles_per_slot=3800.0,
                           tti_us=1000.0)
        assert report.rate_vs_wmmse == 0.5
        # 3800 cycles at 380 MHz = 10 us of a 1000 us TTI = 1%
        assert report.core_utilization == pytest.approx(0.01, rel=0.01)
