"""Live web control plane: HTTP endpoints, streaming, operator
actions, stage-latency decomposition and clean shutdown."""

import http.client
import json
import math
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.obs.metrics import LatencyHistogram
from repro.obs.web import (ACTIONS, API_VERSION, DashboardServer,
                           EventLog, PROMETHEUS_CONTENT_TYPE)
from repro.rrm.networks import suite
from repro.serve.engine import EngineConfig, InferenceEngine
from repro.serve.metrics import STAGES, ServeMetrics

NETWORKS = suite(4)
BY_NAME = {net.name: net for net in NETWORKS}


def _input(network, seed=0):
    rng = np.random.default_rng(seed)
    floats = rng.uniform(-1.0, 1.0, network.input_size)
    return np.asarray(floats * 4096, dtype=np.int64)


def _get(url, timeout=30.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, dict(response.headers), response.read()


def _get_json(url):
    try:
        status, headers, body = _get(url)
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())
    return status, headers, json.loads(body)


def _post(url, body=None, token=None, raw=None):
    data = raw if raw is not None else json.dumps(body or {}).encode()
    request = urllib.request.Request(url, data=data, method="POST")
    if token is not None:
        request.add_header("Authorization", f"Bearer {token}")
    try:
        with urllib.request.urlopen(request, timeout=30.0) as response:
            return (response.status, dict(response.headers),
                    json.loads(response.read()))
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())


@pytest.fixture(scope="module")
def served():
    """One engine with a few completed requests plus a live dashboard."""
    engine = InferenceEngine(
        networks=NETWORKS,
        config=EngineConfig(level="e", max_batch_size=4,
                            max_linger_s=0.001))
    engine.start()
    name = "wang2018"
    requests = [engine.submit(name, _input(BY_NAME[name], i))
                for i in range(6)]
    for request in requests:
        assert request.wait(timeout=30.0)
    dashboard = DashboardServer(engine=engine, sample_interval_s=0.05)
    dashboard.start()
    yield engine, dashboard
    dashboard.stop()
    engine.stop()


class TestEventLog:
    def test_seq_is_monotonic_and_since_filters(self):
        log = EventLog()
        for i in range(5):
            log.append("k", {"i": i})
        assert log.seq == 5
        assert [e["seq"] for e in log.since(2)] == [3, 4, 5]
        assert log.since(5) == []

    def test_wait_since_unblocks_on_append(self):
        log = EventLog()
        out = []
        waiter = threading.Thread(
            target=lambda: out.extend(log.wait_since(0, 10.0)))
        waiter.start()
        time.sleep(0.05)
        log.append("k", {})
        waiter.join(10.0)
        assert not waiter.is_alive()
        assert [e["seq"] for e in out] == [1]

    def test_wait_since_returns_empty_when_stopped(self):
        log = EventLog()
        stop = threading.Event()
        result = {}

        def waiter():
            result["events"] = log.wait_since(0, 30.0, stop=stop)

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        stop.set()
        log.kick()
        thread.join(10.0)
        assert not thread.is_alive()
        assert result["events"] == []

    def test_log_is_bounded_but_seq_keeps_counting(self):
        log = EventLog(maxlen=8)
        for i in range(20):
            log.append("k", {"i": i})
        events = log.since(0)
        assert len(events) == 8
        assert events[-1]["seq"] == 20
        assert log.seq == 20


class TestLatencyHistogramExtensions:
    def test_fast_index_matches_log_formula(self):
        hist = LatencyHistogram()
        rng = np.random.default_rng(7)
        for value in 10.0 ** rng.uniform(-6.5, 2.0, 2000):
            value = float(value)
            if value <= hist.FLOOR:
                expected = 0
            else:
                expected = max(0, int(math.log(value / hist.FLOOR,
                                               hist.BASE)) + 1)
            assert hist._index(value) == expected

    def test_record_n_equals_n_records(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        for _ in range(5):
            a.record(0.003)
        b.record_n(0.003, 5)
        assert a.summary() == b.summary()

    def test_record_n_rejects_negative_and_skips_empty(self):
        hist = LatencyHistogram()
        with pytest.raises(ValueError):
            hist.record_n(-1.0, 3)
        hist.record_n(0.001, 0)
        assert hist.count == 0

    def test_merged_equals_union_of_samples(self):
        a, b, union = (LatencyHistogram(), LatencyHistogram(),
                       LatencyHistogram())
        for value in (1e-5, 3e-4):
            a.record(value)
            union.record(value)
        b.record(2e-3)
        union.record(2e-3)
        merged = LatencyHistogram.merged([a, b])
        assert merged.summary() == union.summary()

    def test_merged_of_empties_is_empty(self):
        merged = LatencyHistogram.merged([LatencyHistogram(),
                                          LatencyHistogram()])
        assert merged.summary()["count"] == 0


class TestStageDecomposition:
    def test_per_network_records_and_read_time_totals(self):
        metrics = ServeMetrics()
        metrics.on_stages("a", [0.001, 0.002], 0.0005, 0.003)
        metrics.on_stages("b", [0.004], 0.001, 0.002)
        stages_a = metrics.per_network["a"].stages
        for stage in STAGES:
            assert stages_a[stage].count == 2
        totals = metrics.stage_totals()
        for stage in STAGES:
            assert totals[stage]["count"] == 3
        assert totals["queue_wait"]["max_s"] == 0.004
        # The hot path never writes total's own histograms; to_dict
        # presents the read-time merge instead.
        assert metrics.total.stages["queue_wait"].count == 0
        doc = metrics.to_dict()
        assert doc["total"]["stages"]["execute"]["count"] == 3
        assert doc["per_network"]["b"]["stages"]["execute"]["count"] == 1

    def test_stage_family_in_collect(self):
        metrics = ServeMetrics()
        metrics.on_stages("a", [0.001], 0.0005, 0.003)
        families = {row[0]: row for row in metrics.collect()}
        name, kind, _, samples = families["serve_stage_latency_seconds"]
        assert kind == "summary"
        labels = {(s[0]["network"], s[0]["stage"]) for s in samples}
        assert labels == {("a", stage) for stage in STAGES}

    def test_engine_decomposition_lines_up_with_completed(self, served):
        engine, _ = served
        net = engine.metrics.per_network["wang2018"]
        assert net.stages["queue_wait"].count == net.completed.value
        totals = engine.metrics.stage_totals()
        total_completed = engine.metrics.total.completed.value
        for stage in STAGES:
            assert totals[stage]["count"] == total_completed
            assert totals[stage]["p50_s"] is not None


class TestHttpGet:
    def test_prometheus_text_roundtrip(self, served):
        engine, dashboard = served
        status, headers, body = _get(dashboard.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        text = body.decode()
        assert "# TYPE repro_build_info gauge" in text
        assert "# TYPE repro_uptime_seconds gauge" in text
        completed = None
        for line in text.splitlines():
            if line.startswith('serve_completed_total{network="wang2018"}'):
                completed = float(line.rsplit(" ", 1)[1])
        assert completed == engine.metrics.total.completed.value

    def test_metrics_json_schema(self, served):
        _, dashboard = served
        status, headers, body = _get_json(dashboard.url
                                          + "/api/metrics.json")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert body["v"] == API_VERSION
        assert isinstance(body["seq"], int)
        assert isinstance(body["t"], float)
        assert "serve_completed_total" in body["metrics"]

    def test_status_schema(self, served):
        engine, dashboard = served
        status, _, body = _get_json(dashboard.url + "/api/status")
        assert status == 200
        assert body["v"] == API_VERSION
        assert body["mode"] == "engine"
        assert body["actions"] == list(ACTIONS)
        assert set(body["build"]) == {"version", "engine", "backend"}
        assert body["uptime_s"] > 0
        assert body["networks"] == [net.name for net in engine.networks]
        sub = body["engine"]
        for key in ("queue_depths", "total_queue_depth", "breakers",
                    "plan_cache_entries", "level", "backend", "injector"):
            assert key in sub
        assert set(body["stages"]) == set(STAGES)

    def test_audit_schema(self, served):
        _, dashboard = served
        status, _, body = _get_json(dashboard.url + "/api/audit")
        assert status == 200
        assert body["v"] == API_VERSION
        assert isinstance(body["entries"], list)

    def test_bench_endpoint_reads_bench_files(self, tmp_path):
        (tmp_path / "BENCH_demo.json").write_text(
            json.dumps({"bench": "demo", "value": 1}))
        (tmp_path / "BENCH_broken.json").write_text("{not json")
        with DashboardServer(bench_dir=str(tmp_path)) as dashboard:
            status, _, body = _get_json(dashboard.url + "/api/bench")
        assert status == 200
        assert body["v"] == API_VERSION
        assert body["benches"] == {"BENCH_demo.json":
                                   {"bench": "demo", "value": 1}}

    def test_flamegraph_schema(self, served):
        _, dashboard = served
        status, _, body = _get_json(
            dashboard.url + "/api/flamegraph?network=wang2018")
        assert status == 200
        assert body["v"] == API_VERSION
        assert body["network"] == "wang2018"
        assert body["level"] == "e"
        assert "wang2018" in body["folded"]

    def test_flamegraph_404_when_nothing_attached(self):
        with DashboardServer() as dashboard:
            status, _, body = _get_json(dashboard.url + "/api/flamegraph")
        assert status == 404
        assert "error" in body

    def test_trace_404_without_tracer(self, served):
        _, dashboard = served
        status, _, body = _get_json(dashboard.url + "/api/trace")
        assert status == 404
        assert "error" in body

    def test_trace_serves_chrome_trace_with_download(self):
        from repro.obs.spans import SpanTracer
        engine = InferenceEngine(networks=NETWORKS,
                                 config=EngineConfig(level="e"),
                                 tracer=SpanTracer(process_name="t"))
        with DashboardServer(engine=engine) as dashboard:
            status, headers, body = _get_json(
                dashboard.url + "/api/trace?download=1")
        assert status == 200
        assert "traceEvents" in body
        assert headers["Content-Disposition"].startswith("attachment")

    def test_index_and_app_js_served(self, served):
        _, dashboard = served
        status, headers, body = _get(dashboard.url + "/")
        assert status == 200
        assert headers["Content-Type"].startswith("text/html")
        assert b"<!doctype html>" in body.lower()
        status, headers, _ = _get(dashboard.url + "/app.js")
        assert status == 200
        assert headers["Content-Type"].startswith(
            "application/javascript")

    def test_unknown_path_is_json_404(self, served):
        _, dashboard = served
        status, _, body = _get_json(dashboard.url + "/api/nope")
        assert status == 404
        assert "error" in body


class TestStreaming:
    def test_long_poll_returns_existing_events_immediately(self, served):
        _, dashboard = served
        dashboard.events.append("test", {"x": 1})
        status, _, body = _get_json(
            dashboard.url + "/api/updates?since=0&timeout_s=5")
        assert status == 200
        assert body["v"] == API_VERSION
        seqs = [event["seq"] for event in body["events"]]
        assert seqs == sorted(seqs)
        assert body["seq"] >= seqs[-1]

    def test_long_poll_monotonic_under_concurrency(self, served):
        _, dashboard = served
        errors = []
        stop_appending = threading.Event()

        def poll():
            since = dashboard.events.seq
            seen = []
            for _ in range(5):
                status, _, body = _get_json(
                    f"{dashboard.url}/api/updates"
                    f"?since={since}&timeout_s=5")
                if status != 200:
                    errors.append(("status", status))
                    return
                seqs = [event["seq"] for event in body["events"]]
                if any(s <= since for s in seqs) or seqs != sorted(seqs):
                    errors.append(("order", since, seqs))
                    return
                seen.extend(seqs)
                if seqs:
                    since = seqs[-1]
            if len(seen) != len(set(seen)):
                errors.append(("duplicates", seen))

        def append():
            i = 0
            while not stop_appending.is_set():
                dashboard.events.append("tick", {"i": i})
                i += 1
                time.sleep(0.002)

        appender = threading.Thread(target=append)
        pollers = [threading.Thread(target=poll) for _ in range(4)]
        appender.start()
        for poller in pollers:
            poller.start()
        for poller in pollers:
            poller.join(60.0)
        stop_appending.set()
        appender.join(10.0)
        assert not errors
        assert not any(poller.is_alive() for poller in pollers)

    def test_sse_stream_ids_are_monotonic(self, served):
        _, dashboard = served
        connection = http.client.HTTPConnection(
            dashboard.host, dashboard.port, timeout=30)
        try:
            connection.request("GET", "/api/stream?since=0")
            response = connection.getresponse()
            assert response.status == 200
            assert response.headers["Content-Type"] == "text/event-stream"
            for i in range(3):
                dashboard.events.append("test", {"i": i})
            ids = []
            while len(ids) < 3:
                line = response.fp.readline()
                if line.startswith(b"id: "):
                    ids.append(int(line[4:].strip()))
            assert ids == sorted(ids)
            assert len(set(ids)) == len(ids)
        finally:
            connection.close()


class TestOperatorActions:
    def test_flush_plan_cache_takes_effect_and_audits(self, served):
        engine, dashboard = served
        engine.registry.get(BY_NAME["wang2018"], "e")
        assert len(engine.registry) > 0
        before = len(dashboard.audit_entries())
        status, _, body = _post(
            dashboard.url + "/api/actions/flush-plan-cache")
        assert status == 200
        assert body["ok"] is True
        assert body["detail"]["entries"] > 0
        assert len(engine.registry) == 0
        entries = dashboard.audit_entries()
        assert len(entries) == before + 1
        assert entries[-1]["action"] == "flush-plan-cache"
        assert entries[-1]["ok"] is True

    def test_chaos_arms_engine_and_toggle_disables(self, served):
        engine, dashboard = served
        status, _, body = _post(dashboard.url + "/api/actions/chaos",
                                {"seed": 7, "requests": 5})
        assert status == 200
        assert body["detail"]["armed"] == "engine"
        assert engine.injector is not None
        assert engine.injector.enabled is True
        status, _, body = _post(
            dashboard.url + "/api/actions/toggle-injector")
        assert status == 200
        assert body["detail"]["enabled"] is False
        assert engine.injector.enabled is False
        actions = [e["action"] for e in dashboard.audit_entries()]
        assert actions[-2:] == ["chaos", "toggle-injector"]
        engine.injector = None

    def test_actions_appear_in_event_stream(self, served):
        _, dashboard = served
        since = dashboard.events.seq
        _post(dashboard.url + "/api/actions/flush-plan-cache")
        kinds = [event["kind"]
                 for event in dashboard.events.since(since)]
        assert "action" in kinds

    def test_drain_without_cluster_is_409_and_audited(self, served):
        _, dashboard = served
        status, _, body = _post(dashboard.url + "/api/actions/drain",
                                {"shard": 0})
        assert status == 409
        assert body["ok"] is False
        assert dashboard.audit_entries()[-1]["ok"] is False

    def test_toggle_injector_without_injector_is_409(self, served):
        engine, dashboard = served
        assert getattr(engine, "injector", None) is None
        status, _, body = _post(
            dashboard.url + "/api/actions/toggle-injector")
        assert status == 409
        assert "error" in body["detail"]

    def test_unknown_action_is_404_with_catalog(self, served):
        _, dashboard = served
        status, _, body = _post(dashboard.url + "/api/actions/reboot")
        assert status == 404
        assert body["detail"]["known"] == list(ACTIONS)

    def test_malformed_json_body_is_400(self, served):
        _, dashboard = served
        status, _, body = _post(
            dashboard.url + "/api/actions/flush-plan-cache",
            raw=b"{not json")
        assert status == 400
        assert "error" in body

    def test_post_to_unknown_path_is_404(self, served):
        _, dashboard = served
        status, _, body = _post(dashboard.url + "/api/nope")
        assert status == 404


class TestPostAuth:
    @pytest.fixture()
    def auth_dashboard(self, served):
        engine, _ = served
        dashboard = DashboardServer(engine=engine, auth_token="sesame")
        dashboard.start()
        yield dashboard
        dashboard.stop()

    def test_post_without_token_is_401(self, auth_dashboard):
        status, headers, body = _post(
            auth_dashboard.url + "/api/actions/flush-plan-cache")
        assert status == 401
        assert headers["WWW-Authenticate"] == "Bearer"
        assert body["error"] == "unauthorized"
        # A rejected request never reaches the action layer.
        assert auth_dashboard.audit_entries() == []

    def test_post_with_wrong_token_is_401(self, auth_dashboard):
        status, _, _ = _post(
            auth_dashboard.url + "/api/actions/flush-plan-cache",
            token="wrong")
        assert status == 401

    def test_post_with_token_succeeds(self, served, auth_dashboard):
        engine, _ = served
        engine.registry.get(BY_NAME["wang2018"], "e")
        status, _, body = _post(
            auth_dashboard.url + "/api/actions/flush-plan-cache",
            token="sesame")
        assert status == 200
        assert body["ok"] is True
        assert len(engine.registry) == 0

    def test_reads_stay_open_without_token(self, auth_dashboard):
        status, _, body = _get_json(auth_dashboard.url + "/api/status")
        assert status == 200
        assert body["v"] == API_VERSION


class TestLifecycle:
    def test_stop_joins_every_thread_even_with_open_sse(self):
        before = set(threading.enumerate())
        dashboard = DashboardServer(sample_interval_s=0.05)
        dashboard.start()
        connection = http.client.HTTPConnection(
            dashboard.host, dashboard.port, timeout=30)
        connection.request("GET", "/api/stream")
        response = connection.getresponse()
        assert response.status == 200
        dashboard.events.append("test", {})
        assert response.fp.readline()  # the handler is live mid-stream
        dashboard.stop()
        leaked = [thread for thread
                  in set(threading.enumerate()) - before
                  if thread.is_alive()]
        assert leaked == []
        connection.close()

    def test_restart_after_stop(self):
        dashboard = DashboardServer()
        dashboard.start()
        first = dashboard.url
        dashboard.stop()
        dashboard.start()
        try:
            status, _, body = _get_json(dashboard.url + "/api/status")
            assert status == 200
            assert body["mode"] == "none"
        finally:
            dashboard.stop()
        assert first  # both generations served from a real port

    def test_stop_unregisters_collectors(self, served):
        engine, _ = served
        from repro.obs.metrics import REGISTRY
        extra = DashboardServer(engine=engine)
        extra.start()
        extra.stop()
        # The module fixture's dashboard is still attached, so exactly
        # one copy of the engine collector must remain registered.
        text = REGISTRY.prometheus_text()
        assert text.count("# TYPE serve_completed_total counter") == 1
