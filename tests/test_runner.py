"""NetworkPlan / NetworkProgram: placement, execution, golden checking."""

import numpy as np
import pytest

from repro.kernels import LEVELS, NetworkPlan, NetworkProgram
from repro.kernels.runner import FRAME_REGS
from repro.nn import (ConvSpec, DenseSpec, LstmSpec, Network, init_params, quantize_params)

LEVEL_KEYS = ("a", "b", "c", "d", "e")


def _params(net, seed=0):
    return quantize_params(init_params(net, np.random.default_rng(seed)))


def _inputs(net, count, seed=1):
    rng = np.random.default_rng(seed)
    return [np.asarray(rng.uniform(-1, 1, net.input_size) * 4096,
                       dtype=np.int64) for _ in range(count)]


MIXED = Network("mixed", (DenseSpec(6, 12, "relu"), LstmSpec(12, 8),
                          LstmSpec(8, 6), DenseSpec(6, 4, "sig")))
FEEDFORWARD = Network("ff", (DenseSpec(8, 20, "relu"),
                             DenseSpec(20, 12, "tanh"), DenseSpec(12, 3)))
CNN = Network("cnn", (ConvSpec(2, 4, 6, 6, 3), DenseSpec(64, 10, "relu"),
                      DenseSpec(10, 4)))


class TestEndToEnd:
    @pytest.mark.parametrize("level", LEVEL_KEYS)
    @pytest.mark.parametrize("net", (MIXED, FEEDFORWARD, CNN),
                             ids=lambda n: n.name)
    def test_bit_exact_vs_golden(self, level, net):
        program = NetworkProgram(net, _params(net), level)
        program.run_and_check(_inputs(net, 3))

    @pytest.mark.parametrize("level", LEVEL_KEYS)
    def test_iss_matches_static_model(self, level):
        program = NetworkProgram(MIXED, _params(MIXED), level)
        steps = 4
        program.forward(_inputs(MIXED, steps))
        assert program.trace == program.plan.trace.scaled(steps)

    def test_mismatch_reported_with_context(self):
        program = NetworkProgram(FEEDFORWARD, _params(FEEDFORWARD), "d")
        # corrupt the last layer's weights in simulator memory only: the
        # corruption reaches the output unmasked by any activation
        addr = program.plan.layout.addr("w2")
        program.memory.store_halfwords(addr, [32767] * 8)
        with pytest.raises(AssertionError, match="ff level d"):
            program.run_and_check(_inputs(FEEDFORWARD, 1))

    def test_reset_state_reproduces_run(self):
        program = NetworkProgram(MIXED, _params(MIXED), "c")
        xs = _inputs(MIXED, 2)
        first = program.forward(xs)
        program.reset_state()
        again = program.forward(xs)
        assert np.array_equal(first, again)

    def test_bad_input_shape_rejected(self):
        program = NetworkProgram(FEEDFORWARD, _params(FEEDFORWARD), "b")
        with pytest.raises(ValueError):
            program.step(np.zeros(3, dtype=np.int64))


class TestPlanning:
    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            NetworkPlan(FEEDFORWARD, "z")

    def test_odd_lstm_width_rejected(self):
        net = Network("odd", (LstmSpec(6, 5),))
        with pytest.raises(ValueError):
            NetworkPlan(net, "d")

    def test_regions_do_not_overlap(self):
        plan = NetworkPlan(MIXED, "e")
        spans = sorted((addr, addr + size)
                       for addr, size in plan.layout.regions.values())
        for (a_start, a_end), (b_start, b_end) in zip(spans, spans[1:]):
            assert a_end <= b_start

    def test_lstm_chain_has_copy(self):
        plan = NetworkPlan(MIXED, "d")
        assert "copy" in plan.text  # comment emitted by gen_copy

    def test_single_lstm_has_no_copy(self):
        net = Network("l", (DenseSpec(4, 6), LstmSpec(6, 4)))
        plan = NetworkPlan(net, "d")
        assert "copy" not in plan.text

    def test_cycles_per_step_positive_and_ordered(self):
        cycles = {k: NetworkPlan(MIXED, k).cycles_per_step
                  for k in LEVEL_KEYS}
        assert cycles["a"] > cycles["b"] > cycles["c"] > cycles["d"]

    def test_frame_regs_table_covers_levels(self):
        assert set(FRAME_REGS) == set(LEVELS)  # a-e plus the "f" study

    def test_level_object_accepted(self):
        plan = NetworkPlan(FEEDFORWARD, LEVELS["c"])
        assert plan.level is LEVELS["c"]


class TestLayoutDetails:
    def test_lstm_first_layer_input_is_xh(self):
        net = Network("l0", (LstmSpec(4, 6), DenseSpec(6, 2)))
        plan = NetworkPlan(net, "d")
        assert plan.input_addr == plan.layout.addr("xh0")

    def test_dense_before_lstm_writes_into_xh(self):
        plan = NetworkPlan(MIXED, "d")
        # buf1 must not exist: dense layer 0 writes straight into xh1
        assert "buf1" not in plan.layout.regions
        assert "xh1" in plan.layout.regions

    def test_output_addr_is_last_buffer(self):
        plan = NetworkPlan(FEEDFORWARD, "d")
        assert plan.output_addr == plan.layout.addr("buf3")

    def test_lstm_output_addr_is_h_region(self):
        net = Network("l", (DenseSpec(4, 6), LstmSpec(6, 4)))
        plan = NetworkPlan(net, "d")
        assert plan.output_addr == plan.layout.addr("xh1") + 2 * 6


class TestWaitStates:
    def test_wait_states_slow_execution_only(self):
        import numpy as np
        net = FEEDFORWARD
        params = _params(net)
        fast = NetworkProgram(net, params, "d")
        slow = NetworkProgram(net, params, "d", wait_states=2)
        xs = _inputs(net, 1)
        out_fast = fast.forward(xs)
        out_slow = slow.forward(xs)
        assert np.array_equal(out_fast, out_slow)
        assert slow.trace.total_cycles > 1.5 * fast.trace.total_cycles
