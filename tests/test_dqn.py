"""DQN trainer for the spectrum-access environment."""

import numpy as np
import pytest

from repro.fixedpoint import Q3_12
from repro.kernels import NetworkProgram
from repro.nn import quantize_params
from repro.rrm import evaluate_policy, train_dsa_agent
from repro.rrm.dqn import DqnAgent, DqnConfig, ReplayBuffer


class TestReplayBuffer:
    def test_push_and_wrap(self):
        buf = ReplayBuffer(4, 2, seed=0)
        for i in range(6):
            buf.push([i, i], i % 2, float(i), [i + 1, i + 1])
        assert buf.size == 4
        # oldest entries overwritten
        assert 4.0 in buf.rewards and 0.0 not in buf.rewards

    def test_sample_shapes(self):
        buf = ReplayBuffer(8, 3, seed=1)
        for i in range(8):
            buf.push([i] * 3, 0, 1.0, [i] * 3)
        obs, actions, rewards, next_obs = buf.sample(5)
        assert obs.shape == (5, 3)
        assert actions.shape == (5,)
        assert rewards.shape == (5,)
        assert next_obs.shape == (5, 3)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ReplayBuffer(0, 2)


class TestAgent:
    def test_epsilon_decays(self):
        agent = DqnAgent(4, seed=0)
        e0 = agent.epsilon()
        agent.steps = agent.config.epsilon_decay_steps
        assert agent.epsilon() < e0
        assert agent.epsilon() == pytest.approx(agent.config.epsilon_end)

    def test_q_values_shape(self):
        agent = DqnAgent(5, seed=0)
        q = agent.q_values(np.ones(5))
        assert q.shape == (1, 5)

    def test_greedy_when_epsilon_zero(self):
        agent = DqnAgent(4, DqnConfig(epsilon_start=0.0, epsilon_end=0.0),
                         seed=0)
        obs = np.ones(4)
        assert agent.act(obs) == int(np.argmax(agent.q_values(obs)[0]))


class TestTraining:
    @pytest.fixture(scope="class")
    def agent(self):
        return train_dsa_agent(n_channels=6, episodes=6,
                               steps_per_episode=200, seed=0)

    def test_learns_better_than_random(self, agent):
        rate_dqn = evaluate_policy(
            lambda obs: np.argmax(agent.q_values(obs)[0]), 6)
        rng = np.random.default_rng(0)
        rate_rand = evaluate_policy(lambda obs: rng.integers(6), 6)
        assert rate_dqn > rate_rand + 0.2

    def test_quantized_agent_runs_on_core(self, agent):
        """Quantize the trained Q-network to Q3.12 and drive the policy
        from the simulated core: the success rate must survive."""
        params = quantize_params(agent.trainer.params)
        program = NetworkProgram(agent.network, params, "e")

        def core_policy(obs):
            q = program.step(Q3_12.from_float(obs))
            return int(np.argmax(q))

        rate_core = evaluate_policy(core_policy, 6, n_slots=200)
        rate_float = evaluate_policy(
            lambda obs: np.argmax(agent.q_values(obs)[0]), 6, n_slots=200)
        assert abs(rate_core - rate_float) < 0.1
        assert rate_core > 0.75
