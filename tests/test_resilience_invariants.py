"""The post-run invariant checker: exactly-once settlement, post-stop
deadline discipline, legal breaker edges — on synthetic audit streams
and real request objects."""

import time

import numpy as np

from repro.resilience import (RouterAudit, check_breaker_transitions,
                              check_requests, check_router_invariants)
from repro.serve.engine import Request, RequestStatus


def _clean_stream():
    return [
        ("submit", 1, "net", None),
        ("submit", 2, "net", 10.0),
        ("settle", 1, RequestStatus.DONE, True, 1.0, None),
        ("settle", 2, RequestStatus.FAILED, True, 2.0, 10.0),
    ]


class TestRouterInvariants:
    def test_clean_stream_passes(self):
        report = check_router_invariants(_clean_stream())
        assert report.ok
        assert report.stats["submitted"] == 2
        assert report.stats["settled_effective"] == 2
        assert report.stats["never_settled"] == 0

    def test_never_settled_flagged(self):
        events = _clean_stream()[:3]  # rid 2 never settles
        report = check_router_invariants(events)
        assert not report.ok
        assert any("never settled" in v for v in report.violations)

    def test_double_settle_flagged(self):
        events = _clean_stream() + [
            ("settle", 1, RequestStatus.DONE, True, 3.0, None)]
        report = check_router_invariants(events)
        assert not report.ok
        assert any("settled 2 times" in v for v in report.violations)

    def test_absorbed_duplicate_is_not_a_violation(self):
        """The idempotence guard reports effective=False for the second
        settle; that is the defense working, not a violation."""
        events = _clean_stream() + [
            ("settle", 1, RequestStatus.DONE, False, 3.0, None),
            ("duplicate_response", 1, "w0"),
        ]
        report = check_router_invariants(events)
        assert report.ok
        assert report.stats["duplicate_responses"] == 1

    def test_settle_without_submit_flagged(self):
        report = check_router_invariants(
            [("settle", 99, RequestStatus.DONE, True, 1.0, None)])
        assert any("settle without submit" in v
                   for v in report.violations)

    def test_post_stop_done_past_deadline_flagged(self):
        events = [
            ("submit", 1, "net", 5.0),
            ("settle", 1, RequestStatus.DONE, True, 9.0, 5.0),
        ]
        assert check_router_invariants(events, stop_t=None).ok
        assert check_router_invariants(events, stop_t=8.0).ok is False
        # Before stop, a late DONE is the deadline policy's business,
        # not this invariant's.
        assert check_router_invariants(events, stop_t=9.5).ok

    def test_dropped_audit_degrades_to_stats(self):
        events = _clean_stream()[:3]
        report = check_router_invariants(events, dropped=5)
        assert report.ok  # cannot distinguish loss from violation
        assert report.stats["never_settled"] == 1
        assert report.stats["audit_dropped"] == 5

    def test_audit_is_bounded_with_drop_counter(self):
        audit = RouterAudit(max_events=3)
        for rid in range(5):
            audit.record("submit", rid, "net", None)
        assert len(audit.events()) == 3
        assert audit.dropped == 2
        assert audit.counts() == {"submit": 3}


class TestBreakerTransitions:
    def test_legal_cycle_passes(self):
        report = check_breaker_transitions([
            ("net", "closed", "open"),
            ("net", "open", "half_open"),
            ("net", "half_open", "open"),
            ("net", "open", "half_open"),
            ("net", "half_open", "closed"),
        ])
        assert report.ok
        assert report.stats["breaker_transitions_checked"] == 5

    def test_illegal_edge_flagged(self):
        report = check_breaker_transitions([("net", "closed", "half_open")])
        assert any("illegal breaker transition" in v
                   for v in report.violations)

    def test_noop_edge_flagged(self):
        report = check_breaker_transitions([("net", "open", "open")])
        assert any("no-op" in v for v in report.violations)

    def test_dict_records_with_from_to_keys(self):
        """Worker final payloads serialize transitions as dicts with
        ``from``/``to`` keys; both spellings must be understood."""
        report = check_breaker_transitions([
            {"network": "net", "from": "closed", "to": "open"},
            {"network": "net", "old": "open", "new": "closed"},
        ])
        assert report.ok


class TestCheckRequests:
    def _request(self, rid=1, deadline=None):
        return Request(network="net", x_raw=np.zeros(4, dtype=np.int64),
                       submit_time=time.monotonic(), deadline=deadline,
                       id=rid)

    def test_settled_requests_pass(self):
        request = self._request()
        request._settle(RequestStatus.DONE)
        report = check_requests([request])
        assert report.ok
        assert report.stats["requests"] == 1

    def test_unsettled_request_flagged(self):
        report = check_requests([self._request(rid=3)])
        assert not report.ok
        assert any("never settled" in v for v in report.violations)

    def test_duplicate_settles_counted_not_flagged(self):
        request = self._request()
        assert request._settle(RequestStatus.DONE)
        assert not request._settle(RequestStatus.FAILED)
        report = check_requests([request])
        assert report.ok
        assert report.stats["duplicate_settles_absorbed"] == 1

    def test_post_stop_done_past_deadline_flagged(self):
        request = self._request(deadline=time.monotonic() - 10.0)
        request._settle(RequestStatus.DONE)
        report = check_requests([request], stop_t=request.settled_at - 1.0)
        assert not report.ok

    def test_reports_merge(self):
        good = check_breaker_transitions([("net", "closed", "open")])
        bad = check_breaker_transitions([("net", "open", "open")])
        merged = good.merge(bad)
        assert not merged.ok
        assert merged.stats["breaker_transitions_checked"] == 1
        doc = merged.to_dict()
        assert doc["ok"] is False and doc["violations"]
