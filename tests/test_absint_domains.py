"""Unit tests for the strided-interval domain behind repro.analysis."""

import random

import pytest

from repro.analysis.domains import (INT_MAX, INT_MIN, SInt, TOP,
                                    WIDEN_THRESHOLDS, wrap_signed)


def _sample(iv, rng, n=16):
    """Concrete members of ``iv`` (endpoints plus random lattice hits)."""
    vals = {iv.lo, iv.hi}
    if iv.stride:
        steps = (iv.hi - iv.lo) // iv.stride
        for _ in range(n):
            vals.add(iv.lo + rng.randrange(steps + 1) * iv.stride)
    return vals


def _rand_iv(rng):
    lo = rng.randrange(-(1 << 16), 1 << 16)
    span = rng.randrange(0, 1 << 12)
    stride = rng.choice((1, 1, 2, 4, 8, 3))
    return SInt.interval(lo, lo + span, stride)


class TestInvariants:
    def test_const(self):
        v = SInt.const(7)
        assert v.is_const and v.stride == 0 and v.contains(7)

    def test_const_wraps_to_signed(self):
        assert SInt.const(1 << 31).lo == INT_MIN
        assert SInt.const(-1 & 0xFFFFFFFF).lo == -1

    def test_interval_aligns_hi_down(self):
        v = SInt.interval(0, 10, 4)
        assert (v.lo, v.hi, v.stride) == (0, 8, 4)

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            SInt.interval(3, 2)

    def test_stride_divides_span(self):
        rng = random.Random(7)
        for _ in range(200):
            v = _rand_iv(rng)
            assert v.lo <= v.hi
            assert (v.stride == 0) == (v.lo == v.hi)
            if v.stride:
                assert (v.hi - v.lo) % v.stride == 0

    def test_aligned(self):
        assert SInt.interval(8, 24, 4).aligned(4)
        assert not SInt.interval(8, 24, 2).aligned(4)
        assert not SInt.interval(6, 14, 4).aligned(4)
        assert SInt.const(12).aligned(4)

    def test_u_bounds(self):
        assert SInt.interval(4, 8).u_bounds() == (4, 8)
        assert SInt.interval(-8, -4).u_bounds() == ((1 << 32) - 8,
                                                    (1 << 32) - 4)
        assert SInt.interval(-1, 1).u_bounds() == (0, (1 << 32) - 1)


class TestLattice:
    def test_join_is_upper_bound(self):
        rng = random.Random(11)
        for _ in range(300):
            a, b = _rand_iv(rng), _rand_iv(rng)
            j = a.join(b)
            assert j.includes(a) and j.includes(b)

    def test_join_keeps_congruence(self):
        j = SInt.interval(0, 8, 4).join(SInt.interval(16, 32, 4))
        assert j.stride == 4

    def test_meet_soundness(self):
        rng = random.Random(13)
        for _ in range(300):
            a, b = _rand_iv(rng), _rand_iv(rng)
            m = a.meet(b)
            common = {v for v in _sample(a, rng) if b.contains(v)}
            common |= {v for v in _sample(b, rng) if a.contains(v)}
            if m is None:
                # Claimed-empty intersections must really be empty at
                # least on the sampled members.
                assert not common
            else:
                for v in common:
                    assert m.contains(v)

    def test_widen_reaches_threshold(self):
        old = SInt.interval(0, 10)
        new = SInt.interval(0, 11)
        w = old.widen(new)
        assert w.hi in WIDEN_THRESHOLDS
        assert w.includes(old) and w.includes(new)

    def test_widen_stable_when_included(self):
        old = SInt.interval(0, 100)
        assert old.widen(SInt.interval(5, 50)) is old

    def test_widen_terminates(self):
        # Repeated widening must climb the threshold ladder and reach
        # full signed-32 bounds in a handful of steps, not one per
        # value.
        v = SInt.const(0)
        steps = 0
        for step in range(1, 60):
            nxt = v.widen(SInt.interval(-(4 ** step), 4 ** step))
            if nxt != v:
                steps += 1
            v = nxt
            if v.lo == INT_MIN and v.hi == INT_MAX:
                break
        assert v.lo == INT_MIN and v.hi == INT_MAX
        assert steps <= len(WIDEN_THRESHOLDS)


class TestTransfer:
    def test_add_exact(self):
        s = SInt.interval(0, 8, 4).add(SInt.const(3))
        assert (s.lo, s.hi, s.stride) == (3, 11, 4)

    def test_wrap32_uniform_shift_is_exact(self):
        # Whole interval past INT_MAX by the same 2**32 multiple: the
        # result is the exact wrapped interval, not TOP.
        v, wrapped = wrap_signed(INT_MAX + 1, INT_MAX + 9, 4)
        assert wrapped
        assert (v.lo, v.hi) == (INT_MIN, INT_MIN + 8)

    def test_wrap32_straddle_is_top(self):
        v, wrapped = wrap_signed(INT_MAX - 4, INT_MAX + 4, 1)
        assert wrapped and v == TOP

    def test_wrap32_no_wrap_reports_false(self):
        v, wrapped = wrap_signed(-10, 10, 2)
        assert not wrapped and v.lo == -10 and v.hi == 10

    def test_wrap32_huge_span_is_top(self):
        v, wrapped = wrap_signed(0, 1 << 33, 1)
        assert wrapped and v == TOP

    def test_shifts(self):
        v = SInt.interval(0, 32, 8)
        assert v.shl_const(2).stride == 32
        assert v.sra_const(2).stride == 2
        neg = SInt.interval(-8, -4, 4)
        u = neg.srl_const(1)
        assert u.lo == ((1 << 32) - 8) >> 1

    def test_and_sound_on_negatives(self):
        # -5 & -3 == -7 undercuts both lower bounds; the transfer must
        # cover it.
        a, b = SInt.const(-5), SInt.const(-3)
        assert a.and_(b).contains(-7)

    def test_random_soundness(self):
        # Every binary transfer over-approximates concrete arithmetic.
        rng = random.Random(2020)
        m32 = (1 << 32) - 1

        def s32(x):
            return ((x & m32) ^ (1 << 31)) - (1 << 31)

        ops = [
            ("add", lambda a, b: a.add(b), lambda x, y: s32(x + y)),
            ("sub", lambda a, b: a.sub(b), lambda x, y: s32(x - y)),
            ("mul", lambda a, b: a.mul(b), lambda x, y: s32(x * y)),
            ("and", lambda a, b: a.and_(b), lambda x, y: x & y),
            ("or", lambda a, b: a.or_(b), lambda x, y: s32((x & m32)
                                                           | (y & m32))),
            ("xor", lambda a, b: a.xor_(b), lambda x, y: s32((x & m32)
                                                             ^ (y & m32))),
            ("min", lambda a, b: a.min_(b), min),
            ("max", lambda a, b: a.max_(b), max),
        ]
        for _ in range(400):
            a, b = _rand_iv(rng), _rand_iv(rng)
            xs, ys = _sample(a, rng, 4), _sample(b, rng, 4)
            for name, af, cf in ops:
                r = af(a, b)
                for x in xs:
                    for y in ys:
                        assert r.contains(cf(x, y)), \
                            f"{name}: {cf(x, y)} not in {r} " \
                            f"({a} {name} {b})"
