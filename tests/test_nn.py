"""Golden NN layer models and network executors."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fixedpoint import Q3_12
from repro.nn import (ConvSpec, DenseSpec, FloatModel, LstmSpec, Network,
                      QuantModel, conv2d_fixed, conv2d_float, dense_fixed,
                      dense_float, init_params, lstm_step_fixed,
                      lstm_step_float, quantize_params, wrap32)


class TestWrap32:
    @given(st.integers(min_value=-(2 ** 62), max_value=2 ** 62))
    def test_congruence_and_range(self, value):
        wrapped = int(wrap32(value))
        assert -(1 << 31) <= wrapped < (1 << 31)
        assert (wrapped - value) % (1 << 32) == 0


class TestFixedVsFloat:
    @given(seed=st.integers(0, 10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_dense_tracks_float(self, seed):
        rng = np.random.default_rng(seed)
        w = rng.uniform(-0.5, 0.5, (8, 12))
        x = rng.uniform(-1, 1, 12)
        b = rng.uniform(-0.2, 0.2, 8)
        fixed = dense_fixed(Q3_12.from_float(w), Q3_12.from_float(x),
                            Q3_12.from_float(b))
        ref = dense_float(w, x, b)
        assert np.max(np.abs(Q3_12.to_float(fixed) - ref)) < 0.01

    @given(seed=st.integers(0, 10 ** 6))
    @settings(max_examples=10, deadline=None)
    def test_lstm_tracks_float(self, seed):
        rng = np.random.default_rng(seed)
        m, n = 6, 8
        w = rng.uniform(-0.4, 0.4, (4 * n, m + n))
        b = rng.uniform(-0.1, 0.1, 4 * n)
        x = rng.uniform(-1, 1, m)
        h = np.zeros(n)
        c = np.zeros(n)
        hf, cf = lstm_step_float(w, b, x, h, c)
        hq, cq = lstm_step_fixed(Q3_12.from_float(w), Q3_12.from_float(b),
                                 Q3_12.from_float(x),
                                 Q3_12.from_float(h), Q3_12.from_float(c))
        assert np.max(np.abs(Q3_12.to_float(hq) - hf)) < 0.02
        assert np.max(np.abs(Q3_12.to_float(cq) - cf)) < 0.02

    def test_conv_tracks_float(self):
        rng = np.random.default_rng(0)
        w = rng.uniform(-0.3, 0.3, (3, 2, 3, 3))
        x = rng.uniform(-1, 1, (2, 6, 6))
        b = rng.uniform(-0.1, 0.1, 3)
        fixed = conv2d_fixed(Q3_12.from_float(w), Q3_12.from_float(x),
                             Q3_12.from_float(b))
        ref = conv2d_float(w, x, b)
        assert np.max(np.abs(Q3_12.to_float(fixed) - ref)) < 0.02


class TestSpecs:
    def test_out_sizes(self):
        assert DenseSpec(4, 7).out_size == 7
        assert LstmSpec(4, 6).out_size == 6
        assert ConvSpec(2, 3, 6, 6, 3).out_size == 3 * 16
        assert ConvSpec(2, 3, 6, 6, 3).h_out == 4

    def test_macs(self):
        assert DenseSpec(4, 7).macs == 28
        assert LstmSpec(4, 6).macs == 4 * 6 * 10
        assert ConvSpec(2, 3, 6, 6, 3).macs == 3 * 16 * 2 * 9

    def test_layer_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Network("bad", (DenseSpec(4, 8), DenseSpec(9, 2)))

    def test_network_properties(self):
        net = Network("n", (LstmSpec(4, 6), DenseSpec(6, 2)), timesteps=3)
        assert net.is_recurrent
        assert net.input_size == 4
        assert net.output_size == 2
        assert net.macs_per_inference == 3 * net.macs_per_step

    def test_network_hashable(self):
        a = Network("n", (DenseSpec(2, 2),))
        b = Network("n", (DenseSpec(2, 2),))
        assert hash(a) == hash(b)
        assert a == b


class TestModels:
    def _net(self):
        return Network("m", (DenseSpec(6, 10, "relu"), LstmSpec(10, 8),
                             DenseSpec(8, 4, "sig")))

    def test_float_and_quant_agree_closely(self):
        net = self._net()
        rng = np.random.default_rng(1)
        params = init_params(net, rng)
        fm = FloatModel(net, params)
        qm = QuantModel(net, quantize_params(params))
        for _ in range(5):
            x = rng.uniform(-1, 1, 6)
            out_f = fm.step(x)
            out_q = Q3_12.to_float(qm.step(Q3_12.from_float(x)))
            assert np.max(np.abs(out_f - out_q)) < 0.03

    def test_reset_restores_initial_state(self):
        net = self._net()
        rng = np.random.default_rng(2)
        params = quantize_params(init_params(net, rng))
        qm = QuantModel(net, params)
        x = Q3_12.from_float(rng.uniform(-1, 1, 6))
        first = qm.step(x)
        qm.step(x)
        qm.reset()
        assert np.array_equal(qm.step(x), first)

    def test_recurrence_changes_output(self):
        net = self._net()
        rng = np.random.default_rng(3)
        qm = QuantModel(net, quantize_params(init_params(net, rng)))
        x = Q3_12.from_float(rng.uniform(-1, 1, 6))
        assert not np.array_equal(qm.step(x), qm.step(x))

    def test_forward_returns_last(self):
        net = self._net()
        rng = np.random.default_rng(4)
        qm = QuantModel(net, quantize_params(init_params(net, rng)))
        xs = [Q3_12.from_float(rng.uniform(-1, 1, 6)) for _ in range(3)]
        qm2 = QuantModel(net, qm.params)
        expected = [qm2.step(x) for x in xs][-1]
        qm.reset()
        assert np.array_equal(qm.forward(xs), expected)

    def test_init_params_bounded_for_q312(self):
        net = self._net()
        params = init_params(net, np.random.default_rng(5))
        for layer in params:
            assert np.max(np.abs(layer["w"])) < 2.0
            assert np.max(np.abs(layer["b"])) <= 0.1

    def test_quantize_params_raw_ints(self):
        net = self._net()
        raw = quantize_params(init_params(net, np.random.default_rng(6)))
        for layer in raw:
            assert layer["w"].dtype == np.int64
            assert np.max(np.abs(layer["w"])) <= 32767

    def test_conv_network_roundtrip(self):
        net = Network("cnn", (ConvSpec(1, 2, 5, 5, 3), DenseSpec(18, 4)))
        rng = np.random.default_rng(7)
        params = init_params(net, rng)
        fm = FloatModel(net, params)
        qm = QuantModel(net, quantize_params(params))
        x = rng.uniform(-1, 1, 25)
        out_f = fm.step(x)
        out_q = Q3_12.to_float(qm.step(Q3_12.from_float(x)))
        assert np.max(np.abs(out_f - out_q)) < 0.05

    def test_unknown_spec_type_rejected(self):
        class Weird:
            in_size = out_size = 2
            macs = 4
        net = Network.__new__(Network)  # bypass validation on purpose
        object.__setattr__(net, "name", "w")
        object.__setattr__(net, "layers", (Weird(),))
        object.__setattr__(net, "timesteps", 1)
        with pytest.raises(TypeError):
            init_params(net, np.random.default_rng(0))
