"""Hedge policy thresholds and the deterministic submission-refilled
retry budget."""

import pytest

from repro.resilience import HedgePolicy, RetryBudget


class TestHedgePolicy:
    def test_threshold_floors_on_cold_start(self):
        policy = HedgePolicy(latency_multiplier=3.0, min_threshold_s=0.05)
        assert policy.threshold(None) == 0.05
        assert policy.threshold(0.0) == 0.05
        assert policy.threshold(0.001) == 0.05  # 3ms < floor

    def test_threshold_scales_with_p95(self):
        policy = HedgePolicy(latency_multiplier=3.0, min_threshold_s=0.05)
        assert policy.threshold(0.1) == pytest.approx(0.3)
        assert policy.threshold(1.0) == pytest.approx(3.0)

    def test_defaults_allow_one_hedge(self):
        assert HedgePolicy().max_legs == 2


class TestRetryBudget:
    def test_initial_tokens_then_denial(self):
        budget = RetryBudget(ratio=0.1, cap=32.0, initial=2.0)
        assert budget.try_spend()
        assert budget.try_spend()
        assert not budget.try_spend()
        snap = budget.snapshot()
        assert snap["spent"] == 2
        assert snap["denied"] == 1

    def test_submissions_refill_at_ratio(self):
        budget = RetryBudget(ratio=0.25, cap=32.0, initial=0.0)
        assert not budget.try_spend()
        for _ in range(4):  # 4 submissions x 0.25 = 1 token
            budget.on_submit()
        assert budget.try_spend()
        assert not budget.try_spend()

    def test_cap_bounds_hoarding(self):
        budget = RetryBudget(ratio=1.0, cap=3.0, initial=0.0)
        for _ in range(100):
            budget.on_submit()
        assert budget.snapshot()["tokens"] == 3.0
        assert [budget.try_spend() for _ in range(4)] == \
            [True, True, True, False]

    def test_refund_returns_token(self):
        budget = RetryBudget(ratio=0.0, cap=4.0, initial=1.0)
        assert budget.try_spend()
        assert not budget.try_spend()
        budget.refund()
        assert budget.try_spend()

    def test_deterministic_for_identical_sequences(self):
        """No clock anywhere: replaying the same submit/spend sequence
        yields the same decisions and the same snapshot."""
        def drive(budget):
            out = []
            for i in range(200):
                budget.on_submit()
                if i % 3 == 0:
                    out.append(budget.try_spend())
            return out, budget.snapshot()

        first = drive(RetryBudget(ratio=0.1, cap=8.0, initial=1.0))
        second = drive(RetryBudget(ratio=0.1, cap=8.0, initial=1.0))
        assert first == second
