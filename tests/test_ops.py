"""Tests for fixed-point arithmetic primitives."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.fixedpoint import (Q3_12, dotp2, hadamard, matvec, pack2,
                              requantize, sat_add, sat_mul, sat_sub,
                              unpack2, vec_add)

int16s = st.integers(min_value=-32768, max_value=32767)


class TestScalarOps:
    @given(int16s, int16s)
    def test_sat_add_clamps(self, a, b):
        out = sat_add(a, b)
        assert out == max(-32768, min(32767, a + b))

    @given(int16s, int16s)
    def test_sat_sub_clamps(self, a, b):
        assert sat_sub(a, b) == max(-32768, min(32767, a - b))

    @given(int16s, int16s)
    def test_sat_mul_matches_reference(self, a, b):
        assert sat_mul(a, b) == max(-32768, min(32767, (a * b) >> 12))

    def test_sat_mul_identity(self):
        one = Q3_12.from_float(1.0)
        assert sat_mul(one, 2048) == 2048

    def test_requantize_shift(self):
        assert requantize(100 << 12) == 100
        assert requantize(-(100 << 12)) == -100
        assert requantize(40000 << 12) == 32767   # beyond +8.0 saturates
        assert requantize(-(40000 << 12)) == -32768

    def test_requantize_floor_semantics(self):
        # arithmetic shift rounds toward -inf, like srai
        assert requantize(-1) == -1 >> 12


class TestDotp2:
    @given(int16s, int16s, int16s, int16s)
    def test_matches_integer_dot(self, a0, a1, b0, b1):
        out = dotp2((a0, a1), (b0, b1))
        expected = a0 * b0 + a1 * b1
        assert (out - expected) % (1 << 32) == 0
        assert -(1 << 31) <= out < (1 << 31)

    def test_accumulates(self):
        assert dotp2((1, 2), (3, 4), acc=100) == 100 + 3 + 8

    def test_wraps_32_bits(self):
        big = 32767
        acc = 0
        for _ in range(3000):
            acc = dotp2((big, big), (big, big), acc)
        expected = (3000 * 2 * big * big) % (1 << 32)
        expected -= (expected & 0x80000000) << 1
        assert acc == expected


class TestPack:
    @given(int16s, int16s)
    def test_pack_unpack_roundtrip(self, lo, hi):
        assert unpack2(pack2(lo, hi)) == (lo, hi)

    def test_pack_is_32bit(self):
        assert 0 <= pack2(-1, -1) <= 0xFFFFFFFF


class TestMatvec:
    def test_identity_matrix(self):
        w = np.eye(4, dtype=np.int64) * 4096  # 1.0
        x = np.array([100, -200, 300, -400])
        b = np.zeros(4, dtype=np.int64)
        assert matvec(w, x, b).tolist() == x.tolist()

    def test_bias_only(self):
        w = np.zeros((3, 2), dtype=np.int64)
        out = matvec(w, np.zeros(2, dtype=np.int64),
                     np.array([5, -6, 7]))
        assert out.tolist() == [5, -6, 7]

    def test_saturation_at_output(self):
        w = np.full((1, 4), 32767, dtype=np.int64)
        x = np.full(4, 32767, dtype=np.int64)
        out = matvec(w, x, np.zeros(1, dtype=np.int64))
        assert out[0] == 32767

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            matvec(np.zeros((2, 3)), np.zeros(4), np.zeros(2))
        with pytest.raises(ValueError):
            matvec(np.zeros(3), np.zeros(3), np.zeros(3))

    @given(st.integers(0, 2 ** 32 - 1))
    def test_matches_float_reference_on_seed(self, seed):
        rng = np.random.default_rng(seed)
        w = rng.integers(-2000, 2000, (3, 5))
        x = rng.integers(-2000, 2000, 5)
        b = rng.integers(-2000, 2000, 3)
        out = matvec(w, x, b)
        ref = np.clip((b * 4096 + w @ x) >> 12, -32768, 32767)
        assert np.array_equal(out, ref)


class TestVectorOps:
    @given(st.lists(int16s, min_size=1, max_size=8))
    def test_hadamard_elementwise(self, values):
        a = np.array(values)
        out = hadamard(a, a)
        ref = np.clip((a * a) >> 12, -32768, 32767)
        assert np.array_equal(out, ref)

    def test_vec_add_saturates(self):
        out = vec_add(np.array([32000, -32000]), np.array([32000, -32000]))
        assert out.tolist() == [32767, -32768]
