"""Additional property tests: trace algebra, interleave permutation,
tile-plan/stream consistency, CLI drivers for the newest commands."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.tracer import Trace
from repro.kernels import interleave_weights, padded_row, plan_tiles
from repro.kernels.interleaved import INTERLEAVED_MAX_TILE


class TestTraceAlgebra:
    names = st.sampled_from(["addi", "lw!", "pl.sdot", "mac", "sw"])
    entries = st.dictionaries(names, st.tuples(st.integers(1, 1000),
                                               st.integers(1, 2000)),
                              min_size=1, max_size=5)

    @staticmethod
    def _make(d):
        t = Trace()
        for name, (i, c) in d.items():
            t.add(name, i, max(i, c))
        return t

    @given(entries, st.integers(1, 20))
    def test_scaled_is_linear(self, d, k):
        t = self._make(d)
        s = t.scaled(k)
        assert s.total_instrs == k * t.total_instrs
        assert s.total_cycles == k * t.total_cycles

    @given(entries, entries)
    def test_merge_totals_add(self, d1, d2):
        a, b = self._make(d1), self._make(d2)
        ta, tb = a.total_cycles, b.total_cycles
        merged = a.merge(b)
        assert merged.total_cycles == ta + tb

    @given(entries)
    def test_stall_summary_consistent_with_totals(self, d):
        t = self._make(d)
        assert sum(t.stall_summary().values()) == \
            t.total_cycles - t.total_instrs


class TestInterleavePermutation:
    @given(shape=st.tuples(st.integers(1, 30), st.integers(1, 12)),
           tile=st.sampled_from([2, 4, 10, INTERLEAVED_MAX_TILE]))
    @settings(max_examples=30, deadline=None)
    def test_is_permutation_of_padded_rows(self, shape, tile):
        n_out, n_in = shape
        rng = np.random.default_rng(n_out * 100 + n_in)
        w = rng.integers(-1000, 1000, (n_out, n_in))
        row_hw = padded_row(n_in, "d")
        stream = interleave_weights(w, row_hw, tile)
        assert stream.size == n_out * row_hw
        padded = np.zeros((n_out, row_hw), dtype=np.int64)
        padded[:, :n_in] = w
        # same multiset of values
        assert sorted(stream.tolist()) == sorted(padded.reshape(-1)
                                                 .tolist())

    @given(st.integers(1, 100), st.integers(2, 18))
    def test_tile_stream_lengths(self, n_out, tile):
        tiles = plan_tiles(n_out, tile)
        assert sum(tiles) == n_out


class TestNewCliCommands:
    def test_beyond(self, capsys):
        from repro.cli import main
        assert main(["beyond"]) == 0
        out = capsys.readouterr().out
        assert "Level f" in out

    def test_energy(self, capsys):
        from repro.cli import main
        assert main(["energy"]) == 0
        assert "millisecond" in capsys.readouterr().out

    def test_isa_ref(self, capsys):
        from repro.cli import main
        assert main(["isa-ref"]) == 0
        assert "pl.sdotsp" in capsys.readouterr().out
