"""Cycle-model rules: the timing behaviour Table I's columns encode."""


from repro.core import Cpu, Memory
from repro.isa import assemble


def trace_of(src, mem=None, **kw):
    cpu = Cpu(assemble(src), mem if mem is not None else Memory(1 << 16),
              **kw)
    return cpu.run()


class TestBaseCosts:
    def test_alu_single_cycle(self):
        t = trace_of("addi a0, a0, 1\nadd a1, a0, a0\nebreak\n")
        assert t.cycles["addi"] == 1
        assert t.cycles["add"] == 1

    def test_mul_and_mac_single_cycle(self):
        t = trace_of("mul a0, a1, a2\np.mac a3, a1, a2\nebreak\n")
        assert t.cycles["mul"] == 1
        assert t.cycles["mac"] == 1

    def test_store_single_cycle(self):
        t = trace_of("li a0, 0x100\nsw a1, 0(a0)\nebreak\n")
        assert t.cycles["sw"] == 1


class TestBranchCosts:
    def test_taken_branch_two_cycles(self):
        t = trace_of("""
            beq x0, x0, skip
            addi a0, a0, 1
        skip:
            ebreak
        """)
        assert t.cycles["beq"] == 2
        assert t.instrs.get("addi", 0) == 0

    def test_not_taken_branch_one_cycle(self):
        t = trace_of("bne x0, x0, skip\nskip:\nebreak\n")
        assert t.cycles["bne"] == 1

    def test_jumps_two_cycles(self):
        t = trace_of("""
            jal ra, fn
            ebreak
        fn:
            ret
        """)
        assert t.cycles["jal"] == 2
        assert t.cycles["jalr"] == 2


class TestLoadUseStall:
    def test_dependent_next_instruction_stalls(self):
        t = trace_of("""
            li a0, 0x100
            lw a1, 0(a0)
            addi a2, a1, 1
            ebreak
        """)
        assert t.cycles["lw"] == 2  # stall charged to the load

    def test_independent_next_instruction_no_stall(self):
        t = trace_of("""
            li a0, 0x100
            lw a1, 0(a0)
            addi a2, a0, 1
            ebreak
        """)
        assert t.cycles["lw"] == 1

    def test_store_consuming_load_stalls(self):
        t = trace_of("""
            li a0, 0x100
            lw a1, 0(a0)
            sw a1, 4(a0)
            ebreak
        """)
        assert t.cycles["lw"] == 2

    def test_accumulator_consumers_stall(self):
        # pv.sdotsp.h reads rd: loading the accumulator right before stalls
        t = trace_of("""
            li a0, 0x100
            lw a2, 0(a0)
            pv.sdotsp.h a2, a0, a1
            ebreak
        """)
        assert t.cycles["lw"] == 2

    def test_x0_load_never_stalls(self):
        t = trace_of("""
            li a0, 0x100
            lw x0, 0(a0)
            addi a1, x0, 1
            ebreak
        """)
        assert t.cycles["lw"] == 1

    def test_postinc_load_stall(self):
        t = trace_of("""
            li a0, 0x100
            p.lw a1, 4(a0!)
            addi a2, a1, 1
            ebreak
        """)
        assert t.cycles["lw!"] == 2

    def test_level_b_inner_loop_shape(self):
        """The Table Ib signature: lw!/pv.sdot at 1.5 cycles per load."""
        t = trace_of("""
            li a0, 0x100
            li a1, 0x200
            lp.setupi 0, 10, end
            p.lw t0, 4(a0!)
            p.lw t1, 4(a1!)
            pv.sdotsp.h a2, t0, t1
        end:
            ebreak
        """)
        assert t.instrs["lw!"] == 20
        assert t.cycles["lw!"] == 30   # second load of each pair stalls
        assert t.cycles["pv.sdot"] == 10


class TestWaitStates:
    def test_wait_states_inflate_memory_ops(self):
        mem = Memory(1 << 16, wait_states=2)
        t = trace_of("""
            li a0, 0x100
            lw a1, 4(a0)
            sw a1, 8(a0)
            ebreak
        """, mem)
        assert t.cycles["lw"] == 4  # 1 + stall(1) + 2 waits
        assert t.cycles["sw"] == 3


class TestTraceAggregation:
    def test_display_name_merging(self):
        t = trace_of("""
            li a0, 0x1000
            pl.sdotsp.h.0 x0, a0, x0
            pl.sdotsp.h.1 x0, a0, x0
            ebreak
        """)
        assert t.instrs["pl.sdot"] == 2

    def test_trace_totals(self):
        t = trace_of("addi a0, a0, 1\nebreak\n")
        assert t.total_instrs == 2
        assert t.total_cycles == 2

    def test_trace_top_and_table(self):
        t = trace_of("addi a0,a0,1\naddi a0,a0,1\nebreak\n")
        top = t.top(1)
        assert top[0][0] == "addi"
        text = t.table(top_n=1)
        assert "addi" in text and "total" in text

    def test_scaled(self):
        t = trace_of("addi a0,a0,1\nebreak\n")
        s = t.scaled(3)
        assert s.instrs["addi"] == 3

    def test_merge(self):
        a = trace_of("addi a0,a0,1\nebreak\n")
        b = trace_of("addi a0,a0,1\nebreak\n")
        merged = a.merge(b)
        assert merged.instrs["addi"] == 2
        assert merged.instrs["ebreak"] == 2


class TestDividerLatency:
    def test_div_multi_cycle(self):
        from repro.core.cpu import DIV_CYCLES
        t = trace_of("""
            li a0, 100
            li a1, 7
            div a2, a0, a1
            rem a3, a0, a1
            ebreak
        """)
        assert t.cycles["div"] == DIV_CYCLES
        assert t.cycles["rem"] == DIV_CYCLES

    def test_builder_agrees_on_div(self):
        from repro.kernels import AsmBuilder
        from repro.core import Cpu
        from repro.isa import assemble
        b = AsmBuilder()
        b.li("a0", 100)
        b.li("a1", 7)
        b.emit("divu a2, a0, a1")
        b.emit("ebreak")
        cpu = Cpu(assemble(b.text()))
        assert cpu.run() == b.trace
