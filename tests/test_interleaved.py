"""Interleaved-weight-layout ablation kernel."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Cpu, Memory
from repro.isa import assemble
from repro.kernels import AsmBuilder, padded_row
from repro.kernels.interleaved import (INTERLEAVED_MAX_TILE,
                                       gen_matvec_interleaved,
                                       interleave_weights)
from repro.nn import dense_fixed


def run_interleaved(w, x, bias, max_tile=INTERLEAVED_MAX_TILE):
    n_out, n_in = w.shape
    row_hw = padded_row(n_in, "d")
    builder = AsmBuilder()
    gen_matvec_interleaved(builder, n_in, n_out, 0x8000, 0x2000, 0x3000,
                           0x3800, row_hw, max_tile=max_tile)
    builder.emit("ebreak")
    mem = Memory(1 << 18)
    stream = interleave_weights(w, row_hw, max_tile)
    mem.store_halfwords(0x8000, stream)
    xp = np.zeros(row_hw, dtype=np.int64)
    xp[:n_in] = x
    mem.store_halfwords(0x2000, xp)
    mem.store_halfwords(0x3000, bias)
    cpu = Cpu(assemble(builder.text()), mem)
    iss = cpu.run()
    return mem.load_halfwords(0x3800, n_out), iss, builder.trace


class TestInterleavedKernel:
    @given(shape=st.tuples(st.integers(1, 40), st.integers(1, 24)),
           seed=st.integers(0, 10 ** 6))
    @settings(max_examples=12, deadline=None)
    def test_matches_golden(self, shape, seed):
        n_in, n_out = shape
        rng = np.random.default_rng(seed)
        w = rng.integers(-2000, 2000, (n_out, n_in))
        x = rng.integers(-2000, 2000, n_in)
        bias = rng.integers(-2000, 2000, n_out)
        out, _, _ = run_interleaved(w, x, bias)
        assert np.array_equal(out, dense_fixed(w, x, bias))

    @pytest.mark.parametrize("max_tile", (2, 6, 10, 14, 18))
    def test_all_tile_sizes(self, max_tile):
        rng = np.random.default_rng(max_tile)
        w = rng.integers(-1500, 1500, (23, 12))
        x = rng.integers(-1500, 1500, 12)
        bias = rng.integers(-800, 800, 23)
        out, _, _ = run_interleaved(w, x, bias, max_tile=max_tile)
        assert np.array_equal(out, dense_fixed(w, x, bias))

    def test_model_equals_iss(self):
        rng = np.random.default_rng(0)
        w = rng.integers(-1000, 1000, (20, 16))
        x = rng.integers(-1000, 1000, 16)
        bias = rng.integers(-1000, 1000, 20)
        _, iss, model = run_interleaved(w, x, bias)
        for t in (iss, model):
            t.instrs.pop("ebreak", None)
            t.cycles.pop("ebreak", None)
        assert iss == model

    def test_no_spr_stalls(self):
        rng = np.random.default_rng(1)
        w = rng.integers(-100, 100, (18, 32))
        x = rng.integers(-100, 100, 32)
        bias = np.zeros(18, dtype=np.int64)
        _, iss, _ = run_interleaved(w, x, bias)
        assert iss.cycles["pl.sdot"] == iss.instrs["pl.sdot"]

    def test_beats_per_row_pointer_kernel(self):
        """The point of the ablation: fewer pointer setups and better
        input-load amortization than the paper's level-d kernel."""
        from repro.kernels import LEVELS, MatvecJob, gen_matvec
        rng = np.random.default_rng(2)
        n_in, n_out = 128, 108
        w = rng.integers(-500, 500, (n_out, n_in))
        x = rng.integers(-500, 500, n_in)
        bias = rng.integers(-500, 500, n_out)
        _, iss_il, _ = run_interleaved(w, x, bias)

        builder = AsmBuilder()
        gen_matvec(builder, LEVELS["d"], MatvecJob(
            n_in=n_in, n_out=n_out, w_addr=0x8000, x_addr=0x2000,
            b_addr=0x3000, out_addr=0x3800,
            row_halfwords=padded_row(n_in, "d"), acc_addr=0x0FF0))
        cycles_d = builder.trace.total_cycles
        assert iss_il.total_cycles < cycles_d
        # and the results are still bit-exact
        out, _, _ = run_interleaved(w, x, bias)
        assert np.array_equal(out, dense_fixed(w, x, bias))

    def test_validation(self):
        builder = AsmBuilder()
        with pytest.raises(ValueError):
            gen_matvec_interleaved(builder, 5, 4, 0x8000, 0x2000, 0x3000,
                                   0x3800, row_halfwords=5)


class TestInterleaveTransform:
    def test_stream_order_follows_tile_plan(self):
        w = np.arange(12).reshape(3, 4)  # 3 rows of 2 pairs
        stream = interleave_weights(w, 4, max_tile=4)
        # plan_tiles(3, 4) = [2, 1]: tile {r0, r1} pairs-major, then r2
        expected = [0, 1, 4, 5, 2, 3, 6, 7, 8, 9, 10, 11]
        assert stream.tolist() == expected

    def test_stream_order_even_tile(self):
        w = np.arange(16).reshape(4, 4)  # one tile of 4 rows
        stream = interleave_weights(w, 4, max_tile=4)
        expected = [0, 1, 4, 5, 8, 9, 12, 13, 2, 3, 6, 7, 10, 11, 14, 15]
        assert stream.tolist() == expected

    def test_row_padding_zeros(self):
        w = np.ones((2, 3), dtype=np.int64)
        stream = interleave_weights(w, 4, max_tile=2)
        assert stream.tolist() == [1, 1, 1, 1, 1, 0, 1, 0]
