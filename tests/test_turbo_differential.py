"""Turbo engine vs. interpreter over the full RRM suite.

The tentpole guarantee: ``Cpu(engine="turbo")`` is *bit-exact* (final
registers, every memory word, SPR state) and *cycle-exact* (total cycles
AND every per-static-instruction ``[count, cycles]`` histogram cell)
against the closure interpreter, across all 10 suite networks at every
optimization level a-f.  Any divergence — even one cycle attributed to a
different instruction — fails.
"""

import numpy as np
import pytest

from repro.kernels.runner import NetworkProgram
from repro.nn.network import init_params, quantize_params
from repro.rrm.networks import suite

LEVELS = "abcdef"


def _engine_state(network, params, xs, level, engine):
    program = NetworkProgram(network, params, level, engine=engine)
    outs = [list(map(int, program.step(x))) for x in xs]
    cpu = program.cpu
    return {
        "outs": outs,
        "instret": cpu.instret,
        "cycles": cpu.cycles,
        "regs": [cpu.reg(r) for r in range(32)],
        "sprs": list(cpu.sprs),
        "memory": tuple(cpu.memory.words),
        "stats": [tuple(cell) for cell in cpu._stats],
    }


def _run_both(network, level):
    params = quantize_params(
        init_params(network, np.random.default_rng(2020)))
    rng = np.random.default_rng(7)
    xs = [np.asarray(rng.uniform(-1, 1, network.input_size) * 4096,
                     dtype=np.int64)
          for _ in range(network.timesteps)]
    ref = _engine_state(network, params, xs, level, "interp")
    tur = _engine_state(network, params, xs, level, "turbo")
    return ref, tur


@pytest.mark.parametrize("net_index", range(10))
def test_full_suite_bit_and_cycle_exact(net_index):
    """All 10 networks x all 6 levels (reduced scale keeps this fast)."""
    network = suite(8)[net_index]
    for level in LEVELS:
        ref, tur = _run_both(network, level)
        for key in ref:
            assert tur[key] == ref[key], \
                f"{network.name} level {level}: {key} diverges"


@pytest.mark.parametrize("net_index", [0, 3])
def test_default_scale_spot_check(net_index):
    """Two networks at the default benchmarking scale for larger loop
    trip counts (the scale the Table I validation runs use)."""
    network = suite(4)[net_index]
    for level in LEVELS:
        ref, tur = _run_both(network, level)
        for key in ref:
            assert tur[key] == ref[key], \
                f"{network.name} level {level}: {key} diverges"
