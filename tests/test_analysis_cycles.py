"""Static per-block cycle bounds vs. the instruction-set simulator."""

import pytest

from repro.analysis import (block_cycle_bounds, build_cfg,
                            validate_block_cycles)
from repro.isa import assemble
from repro.rrm.networks import FULL_SUITE
from repro.rrm.suite import plan_for


class TestStaticBounds:
    def test_straight_line_block_is_exact(self):
        program = assemble("""
            addi t0, x0, 1
            lw t1, 0(x0)
            addi t2, t1, 1
            mul t3, t2, t2
            ebreak
        """)
        cfg = build_cfg(program)
        (b,) = block_cycle_bounds(cfg)
        # 4x 1 cycle + 1 load-use stall + 1 ebreak
        assert b.exact
        assert b.min_cycles == 6

    def test_branch_terminator_gets_taken_slack(self):
        program = assemble("""
        top:
            addi t0, t0, -1
            bne t0, x0, top
            ebreak
        """)
        cfg = build_cfg(program)
        bounds = block_cycle_bounds(cfg)
        loop = bounds[cfg.block_at(0).id]
        assert (loop.min_cycles, loop.max_cycles) == (2, 3)

    def test_div_cost(self):
        from repro.core.cpu import DIV_CYCLES
        program = assemble("""
            addi t0, x0, 9
            div t1, t0, t0
            ebreak
        """)
        cfg = build_cfg(program)
        (b,) = block_cycle_bounds(cfg)
        assert b.min_cycles == 2 + DIV_CYCLES

    def test_alternating_sdotsp_body_is_exact(self):
        program = assemble("""
            addi a0, x0, 0x100
            addi t1, x0, 0x200
            lp.setupi 0, 4, end
            p.lw t0, 4(t1!)
            pl.sdotsp.h.0 t2, a0, t0
            pl.sdotsp.h.1 t3, a0, t0
        end:
            ebreak
        """)
        cfg = build_cfg(program)
        bounds = block_cycle_bounds(cfg)
        (lp,) = cfg.loops
        body = bounds[cfg.block_at(lp.body_start).id]
        # load (+1 stall: sdotsp reads t0 next) + 2 sdotsp, re-read
        # distance provably >= 2 around the cycle -> exact.
        assert body.exact
        assert body.min_cycles == 4

    def test_validation_catches_simulated_visits(self):
        program = assemble("""
            addi t0, x0, 3
        loop:
            addi t0, t0, -1
            bne t0, x0, loop
            ebreak
        """)
        mismatches, visits = validate_block_cycles(program)
        assert mismatches == []
        loop_id = build_cfg(program).block_at(1).id
        assert visits[loop_id] == 3


@pytest.mark.parametrize("network", [n for n in FULL_SUITE
                                     if n.name in ("challita2017",
                                                   "eisen2019",
                                                   "naparstek2019")],
                         ids=lambda n: n.name)
@pytest.mark.parametrize("level", ["b", "d", "e", "f"])
class TestAgainstKernels:
    def test_bounds_bracket_simulation(self, network, level):
        """Acceptance: static block bounds agree with the ISS on every
        complete block visit, straight-line blocks exactly."""
        program = assemble(plan_for(network, level).text)
        cfg = build_cfg(program)
        mismatches, visits = validate_block_cycles(
            program, cfg, limit=300_000)
        assert mismatches == []
        assert len(visits) > 3  # the run actually exercised blocks
