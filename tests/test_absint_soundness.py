"""Differential soundness harness: abstract certificates vs. the ISS.

:func:`repro.analysis.analyze` claims register ranges, memory-access
footprints and loop trip counts for every generated kernel;
:func:`repro.analysis.observe_run` replays real executions on the
instruction-set simulator and raises on any escape.  This is the
acceptance gate for the certifier: all suite networks at every
optimization level a-f must analyze in the precise structured mode with
zero unproven accesses, every register/address claim must hold on real
runs, and every proven constant trip count must divide the real
back-edge execution count.
"""

import numpy as np
import pytest

from repro.analysis import (Footprint, analyze, observe_run,
                            proven_trip_counts)
from repro.analysis.linter import ALL_LEVEL_KEYS
from repro.kernels.runner import NetworkProgram
from repro.nn.network import init_params, quantize_params
from repro.rrm.networks import suite

_NETWORKS = {net.name: net for net in suite()}
_TIMESTEPS = 2          # per level; enough to cover recurrent paths


def _program(net, level_key):
    params = quantize_params(
        init_params(net, np.random.default_rng(2020)))
    return NetworkProgram(net, params, level_key, engine="interp")


def _inputs(net, rng, steps):
    floats = rng.uniform(-1.0, 1.0, (steps, net.input_size))
    return np.asarray(floats * 4096, dtype=np.int64)


@pytest.mark.parametrize("name", sorted(_NETWORKS))
def test_certificates_sound_on_iss(name):
    net = _NETWORKS[name]
    rng = np.random.default_rng([2020, net.input_size])
    for level_key in ALL_LEVEL_KEYS:
        prog = _program(net, level_key)
        cert = analyze(prog.program, Footprint.from_plan(prog.plan))

        # Acceptance gate: precise mode, zero unproven loads/stores,
        # every loop's trip count proven.
        assert cert.mode == "structured", (name, level_key)
        assert cert.proven, \
            (name, level_key, [a.to_dict() for a in cert.unproven])
        assert all(f.trip is not None for f in cert.loops), \
            (name, level_key,
             [f.to_dict() for f in cert.loops if f.trip is None])

        for x in _inputs(net, rng, min(_TIMESTEPS, net.timesteps)):
            prog.memory.store_halfwords(prog.plan.input_addr, x)
            stats = observe_run(prog.cpu, cert, 0)
            assert stats["reg_checks"] > 0
            counts = stats["counts"]
            # Constant proven trips divide the observed back-edge
            # execution count (N body runs per loop entry).
            for fact in cert.loops:
                lo, hi = fact.trip
                if lo == hi:
                    assert counts.get(fact.back, 0) % lo == 0, \
                        (name, level_key, fact.to_dict())


def test_memory_kernels_touch_memory():
    # Guard against the harness passing vacuously: real kernels must
    # exercise address checks.
    prog = _program(_NETWORKS["lee2018"], "a")
    cert = analyze(prog.program, Footprint.from_plan(prog.plan))
    x = _inputs(_NETWORKS["lee2018"], np.random.default_rng(7), 1)[0]
    prog.memory.store_halfwords(prog.plan.input_addr, x)
    stats = observe_run(prog.cpu, cert, 0)
    assert stats["addr_checks"] > 0
    assert cert.accesses


def test_certified_trip_counts_match_certificate():
    # The perfmodel-facing export agrees with the underlying
    # certificate facts and survives the lru-cached plan path.
    from repro.perfmodel import certified_trip_counts

    net = _NETWORKS["challita2017"]
    found_any = False
    for level_key in ALL_LEVEL_KEYS:
        trips = certified_trip_counts(net, level_key)
        prog = _program(net, level_key)
        cert = analyze(prog.program, Footprint.from_plan(prog.plan))
        facts = {f.back: f.trip for f in cert.loops if f.kind == "br"}
        for back, n in trips.items():
            assert facts[back] == (n, n)
        for back, trip in facts.items():
            if trip and trip[0] == trip[1]:
                assert trips[back] == trip[0]
        found_any = found_any or bool(trips)
    assert found_any


def test_proven_trip_counts_cached_on_program():
    prog = _program(_NETWORKS["sun2017"], "c")
    first = proven_trip_counts(prog.program,
                               Footprint.from_plan(prog.plan))
    assert proven_trip_counts(prog.program) is first
