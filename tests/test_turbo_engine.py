"""Unit tests for the turbo execution engine (``repro.core.turbo``).

The differential suites (``test_turbo_differential``,
``test_turbo_fuzz``) establish equivalence at scale; these tests pin the
engine's contract points one by one: engine selection, vectorization
thresholds, fallback behavior, error semantics, and cycle attribution.
"""

import pytest

from repro.core import (Cpu, ExecutionLimitExceeded, Memory, MemoryError32,
                        SimError)
from repro.core.turbo import VEC_MIN_ITERS
from repro.isa import assemble


def _pair(src, mem_words=1 << 16, wait_states=0, **kw):
    program = assemble(src)
    cpus = []
    for engine in ("interp", "turbo"):
        cpu = Cpu(program, Memory(mem_words, wait_states=wait_states),
                  engine=engine, **kw)
        cpus.append(cpu)
    return cpus


def _assert_same(ref, tur):
    assert tur.instret == ref.instret
    assert tur.cycles == ref.cycles
    assert [tur.reg(r) for r in range(32)] == \
        [ref.reg(r) for r in range(32)]
    assert tur.memory.words == ref.memory.words
    assert [tuple(c) for c in tur._stats] == \
        [tuple(c) for c in ref._stats]


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        program = assemble("ebreak")
        with pytest.raises(SimError, match="unknown engine"):
            Cpu(program, Memory(1 << 12), engine="warp")

    def test_interp_has_zero_turbo_stats(self):
        program = assemble("ebreak")
        cpu = Cpu(program, Memory(1 << 12))
        cpu.run()
        assert cpu.turbo_stats["vector_loops"] == 0


class TestVectorization:
    def test_long_hw_loop_vectorizes(self):
        src = """
            li a1, 0x1000
            lp.setupi 0, 400, end
            p.lw t0, 4(a1!)
            add a0, a0, t0
        end:
            xor a2, a2, a0
            ebreak
        """
        ref, tur = _pair(src)
        ref.run()
        tur.run()
        _assert_same(ref, tur)
        assert tur.turbo_stats["vector_loops"] >= 1
        assert tur.turbo_stats["bails"] == 0

    def test_short_loop_stays_on_closures(self):
        count = VEC_MIN_ITERS - 1
        src = f"""
            li a1, 0x1000
            lp.setupi 0, {count}, end
            p.lw t0, 4(a1!)
            add a0, a0, t0
        end:
            xor a2, a2, a0
            ebreak
        """
        ref, tur = _pair(src)
        ref.run()
        tur.run()
        _assert_same(ref, tur)
        assert tur.turbo_stats["vector_loops"] == 0

    def test_jal_fallthrough_filler_body(self):
        # Generated kernels pad some loop bodies with jal x0, 4; the
        # body is still straight-line and must vectorize.
        src = """
            li a1, 0x1000
            lp.setupi 0, 300, end
            p.lw t0, 4(a1!)
            jal x0, 4
            add a0, a0, t0
        end:
            addi a3, a3, 2
            ebreak
        """
        ref, tur = _pair(src)
        ref.run()
        tur.run()
        _assert_same(ref, tur)
        assert tur.turbo_stats["vector_loops"] >= 1

    def test_branch_loop_vectorizes(self):
        src = """
            li s4, 0
            li s5, 2000
            li a1, 0x1000
        top:
            p.lw t0, 4(a1!)
            add a0, a0, t0
            addi s4, s4, 1
            bltu s4, s5, top
            ebreak
        """
        ref, tur = _pair(src)
        ref.run()
        tur.run()
        _assert_same(ref, tur)
        assert tur.turbo_stats["vector_iters"] > 0

    def test_spr_stream_exact_with_wait_states(self):
        src = """
            li a0, 0x1000
            li a1, 0x2000
            li t1, 0x3000
            pl.sdotsp.h.0 x0, a0, x0
            pl.sdotsp.h.1 x0, a1, x0
            lp.setupi 0, 200, end
            p.lw t0, 4(t1!)
            pl.sdotsp.h.0 s0, a0, t0
            pl.sdotsp.h.1 s1, a1, t0
        end:
            ebreak
        """
        for wait in (0, 2):
            ref, tur = _pair(src, wait_states=wait)
            ref.run()
            tur.run()
            _assert_same(ref, tur)


class TestLoopSemantics:
    def test_zero_count_register_loop_skips_body(self):
        src = """
            li a2, 0
            lp.setup 0, a2, end
            addi t0, t0, 1
        end:
            addi t1, t1, 1
            ebreak
        """
        ref, tur = _pair(src)
        ref.run()
        tur.run()
        _assert_same(ref, tur)
        assert tur.reg(5) == 0  # body skipped
        assert tur.reg(6) == 1

    def test_state_persists_across_runs(self):
        # NetworkProgram.step() calls run(0) repeatedly on one Cpu; the
        # plan cache and counters must accumulate exactly.
        src = """
            li a1, 0x1000
            lp.setupi 0, 100, end
            p.lw t0, 4(a1!)
            add a0, a0, t0
        end:
            ebreak
        """
        ref, tur = _pair(src)
        for _ in range(3):
            ref.run(0)
            tur.run(0)
        _assert_same(ref, tur)


class TestErrors:
    def test_execution_limit_exact_on_closure_path(self):
        # The and-chained operand is not an affine induction, so the
        # loop never vectorizes; the amortized budget check must raise
        # at exactly the same retired count as the interpreter's
        # per-instruction check.
        src = """
            li a0, 255
            li a1, 255
        top:
            and a0, a0, a1
            bge a0, x0, top
            ebreak
        """
        ref, tur = _pair(src, max_instrs=501)
        with pytest.raises(ExecutionLimitExceeded):
            ref.run()
        with pytest.raises(ExecutionLimitExceeded):
            tur.run()
        assert tur.turbo_stats["vector_iters"] == 0
        assert tur.instret == ref.instret

    def test_execution_limit_caught_in_vector_loop(self):
        # A vectorized never-exiting loop: the kernel detects the
        # budget between windows — possibly late, never missed — and
        # instret must reflect the overrun.
        src = """
            li s4, 0
        top:
            addi s4, s4, 1
            bge s4, x0, top
            ebreak
        """
        limit = 100_000
        ref, tur = _pair(src, max_instrs=limit)
        with pytest.raises(ExecutionLimitExceeded):
            ref.run()
        with pytest.raises(ExecutionLimitExceeded):
            tur.run()
        assert ref.instret == limit + 1
        assert tur.instret > limit

    def test_wild_address_raises_memory_error(self):
        src = """
            li a1, 0x7f000000
            lw t0, 0(a1)
            ebreak
        """
        for cpu in _pair(src, mem_words=1 << 12):
            with pytest.raises(MemoryError32):
                cpu.run()

    def test_oob_inside_vector_window(self):
        # The streamed pointer runs off the end of memory mid-loop; the
        # turbo engine must surface the same error (after bailing out of
        # the vector path), not silently clamp.
        src = """
            li a1, 15000
            lp.setupi 0, 500, end
            p.lw t0, 4(a1!)
            add a0, a0, t0
        end:
            ebreak
        """
        for cpu in _pair(src, mem_words=1 << 12):
            with pytest.raises(MemoryError32):
                cpu.run()


class TestCycleAttribution:
    def test_histogram_cells_match_per_instruction(self):
        # Not just total cycles: every static instruction's [count,
        # cycles] cell must match, including load-use stalls and the
        # div's 35-cycle charge.
        src = """
            li a1, 0x1000
            li s5, 60
            li s4, 0
        top:
            p.lw t0, 4(a1!)
            add a0, a0, t0
            div a2, a0, s5
            addi s4, s4, 1
            bltu s4, s5, top
            ebreak
        """
        ref, tur = _pair(src)
        ref.run()
        tur.run()
        _assert_same(ref, tur)
        trace_ref = ref.trace()
        trace_tur = tur.trace()
        assert trace_tur.instrs == trace_ref.instrs
        assert trace_tur.cycles == trace_ref.cycles
