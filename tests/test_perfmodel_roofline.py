"""Roofline capacity model: exact traffic counts and ceiling math.

All assertions pin explicit ``peak_flops``/``bandwidth`` so the tests
are deterministic — :func:`calibrate_host` is only checked for shape
and positivity.
"""

import numpy as np
import pytest

from repro.nn.network import ConvSpec, DenseSpec, LstmSpec, Network
from repro.perfmodel import (calibrate_host, network_bytes, network_ops,
                             operational_intensity, roofline_point,
                             roofline_report)
from repro.rrm.networks import FULL_SUITE

_DENSE = Network("d", (DenseSpec(8, 4, "relu"),), timesteps=1)
_LSTM = Network("l", (LstmSpec(6, 5),), timesteps=3)
_CONV = Network("c", (ConvSpec(2, 3, 6, 6, 3),), timesteps=1)


class TestTrafficCounts:
    def test_dense_ops(self):
        # 8*4 MACs, 2 ops each.
        assert network_ops(_DENSE) == 2 * 8 * 4

    def test_dense_bytes(self):
        # params: 8*4 weights + 4 biases; stream: 8 in + 4 out.
        assert network_bytes(_DENSE) == 2 * ((8 * 4 + 4) + (8 + 4))

    def test_lstm_bytes(self):
        params = 4 * 5 * (6 + 5) + 4 * 5
        stream = _LSTM.layers[0].in_size + _LSTM.layers[0].out_size \
            + 4 * 5  # h/c read + write
        assert network_bytes(_LSTM) == 2 * (params + stream * 3)

    def test_conv_bytes(self):
        params = 3 * 2 * 9 + 3
        spec = _CONV.layers[0]
        stream = spec.in_size + spec.out_size
        assert network_bytes(_CONV) == 2 * (params + stream)

    def test_intensity_is_ratio(self):
        for net in (_DENSE, _LSTM, _CONV):
            assert operational_intensity(net) == pytest.approx(
                network_ops(net) / network_bytes(net))

    def test_suite_counts_positive(self):
        for net in FULL_SUITE:
            assert network_ops(net) > 0
            assert network_bytes(net) > 0


class TestCeilingMath:
    def test_memory_bound(self):
        # Huge compute roof: the bandwidth roof binds.
        p = roofline_point(_DENSE, peak_flops=1e15, bandwidth=1e9)
        oi = operational_intensity(_DENSE)
        assert p["bound"] == "memory"
        assert p["attainable_ops_s"] == pytest.approx(1e9 * oi)
        assert p["ceiling_rps"] == pytest.approx(
            1e9 * oi / network_ops(_DENSE))

    def test_compute_bound(self):
        p = roofline_point(_DENSE, peak_flops=1e6, bandwidth=1e12)
        assert p["bound"] == "compute"
        assert p["attainable_ops_s"] == pytest.approx(1e6)

    def test_achieved_fields(self):
        p = roofline_point(_DENSE, peak_flops=1e9, bandwidth=1e9,
                           achieved_rps=100.0)
        assert p["achieved_ops_s"] == pytest.approx(
            100.0 * network_ops(_DENSE))
        assert p["pct_of_ceiling"] == pytest.approx(
            100.0 * 100.0 / p["ceiling_rps"])

    def test_ceiling_only_row_has_no_achieved(self):
        p = roofline_point(_DENSE, peak_flops=1e9, bandwidth=1e9)
        assert "achieved_rps" not in p
        assert "pct_of_ceiling" not in p


class TestReport:
    def test_report_shape(self):
        rep = roofline_report(FULL_SUITE, peak_flops=2e9, bandwidth=1e9,
                              achieved_rps={FULL_SUITE[0].name: 50.0})
        assert rep["host"]["ridge_oi"] == pytest.approx(2.0)
        assert set(rep["per_network"]) == {n.name for n in FULL_SUITE}
        first = rep["per_network"][FULL_SUITE[0].name]
        assert first["achieved_rps"] == 50.0
        other = rep["per_network"][FULL_SUITE[1].name]
        assert "achieved_rps" not in other

    def test_calibration_shape_and_cache(self):
        cal = calibrate_host()
        assert cal["peak_flops"] > 0
        assert cal["bandwidth_bytes_s"] > 0
        assert cal["ridge_oi"] == pytest.approx(
            cal["peak_flops"] / cal["bandwidth_bytes_s"])
        assert calibrate_host() is cal
