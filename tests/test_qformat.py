"""Unit and property tests for Q-format descriptions."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.fixedpoint import ACC32, Q1_14, Q3_12, Q7_8, QFormat


class TestStructure:
    def test_q3_12_dimensions(self):
        assert Q3_12.total_bits == 16
        assert Q3_12.scale == 4096
        assert Q3_12.max_raw == 32767
        assert Q3_12.min_raw == -32768
        assert Q3_12.max_value == pytest.approx(7.999755859375)
        assert Q3_12.min_value == -8.0

    def test_acc32_is_32_bits(self):
        assert ACC32.total_bits == 32
        assert ACC32.frac_bits == Q3_12.frac_bits

    def test_resolution(self):
        assert Q3_12.resolution == 1 / 4096
        assert Q7_8.resolution == 1 / 256
        assert Q1_14.resolution == 1 / 16384

    def test_invalid_formats_rejected(self):
        with pytest.raises(ValueError):
            QFormat(-1, 12)
        with pytest.raises(ValueError):
            QFormat(3, -2)
        with pytest.raises(ValueError):
            QFormat(40, 40)

    def test_str(self):
        assert str(Q3_12) == "Q3.12"


class TestConversion:
    def test_one_is_4096(self):
        assert Q3_12.from_float(1.0) == 4096

    def test_saturates_at_rails(self):
        assert Q3_12.from_float(100.0) == 32767
        assert Q3_12.from_float(-100.0) == -32768

    def test_round_half_away_from_zero(self):
        half_lsb = 0.5 / 4096
        assert Q3_12.from_float(half_lsb) == 1
        assert Q3_12.from_float(-half_lsb) == -1

    def test_floor_rounding(self):
        assert Q3_12.from_float(0.9 / 4096, rounding="floor") == 0
        assert Q3_12.from_float(-0.1 / 4096, rounding="floor") == -1

    def test_unknown_rounding(self):
        with pytest.raises(ValueError):
            Q3_12.from_float(0.5, rounding="stochastic")

    def test_array_conversion(self):
        arr = Q3_12.from_float(np.array([0.5, -0.5, 10.0]))
        assert arr.tolist() == [2048, -2048, 32767]

    def test_scalar_types(self):
        assert isinstance(Q3_12.from_float(0.25), int)
        assert isinstance(Q3_12.to_float(1024), float)

    @given(st.floats(min_value=-7.9, max_value=7.9))
    def test_roundtrip_error_bounded(self, value):
        raw = Q3_12.from_float(value)
        assert abs(Q3_12.to_float(raw) - value) <= Q3_12.resolution / 2

    @given(st.integers(min_value=-32768, max_value=32767))
    def test_raw_roundtrip_exact(self, raw):
        assert Q3_12.from_float(Q3_12.to_float(raw)) == raw


class TestSaturateWrap:
    @given(st.integers(min_value=-(2 ** 40), max_value=2 ** 40))
    def test_saturate_in_range(self, raw):
        sat = Q3_12.saturate(raw)
        assert Q3_12.min_raw <= sat <= Q3_12.max_raw
        if Q3_12.contains_raw(raw):
            assert sat == raw

    @given(st.integers(min_value=-(2 ** 40), max_value=2 ** 40))
    def test_wrap_congruent_mod_2n(self, raw):
        wrapped = Q3_12.wrap(raw)
        assert Q3_12.min_raw <= wrapped <= Q3_12.max_raw
        assert (wrapped - raw) % (1 << 16) == 0

    def test_wrap_array(self):
        arr = Q3_12.wrap(np.array([32768, -32769, 5]))
        assert arr.tolist() == [-32768, 32767, 5]
