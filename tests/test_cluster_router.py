"""Router invariants: deterministic sharding/JSQ, admission control."""

import numpy as np
import pytest

from repro.cluster.router import ReplicaHandle, Router, ShardPlan
from repro.rrm.networks import suite
from repro.serve.engine import RequestStatus

NETWORKS = suite(4)
BY_NAME = {net.name: net for net in NETWORKS}


class StubReplica(ReplicaHandle):
    """Records forwarded items; completion is driven by the test."""

    def __init__(self, shard, index):
        super().__init__(shard=shard, index=index,
                         name=f"shard-{shard}/replica-{index}")
        self.received = []

    def send(self, items):
        self.received.extend(items)


def _router(n_shards=2, replicas=2, capacity=4, **kw):
    plan = ShardPlan(NETWORKS, n_shards)
    router = Router(plan, capacity=capacity, **kw)
    stubs = []
    for shard in range(plan.n_shards):
        for index in range(replicas):
            stub = StubReplica(shard, index)
            router.attach_replica(stub)
            stubs.append(stub)
    return router, stubs


def _x(network, seed=0):
    rng = np.random.default_rng(seed)
    return np.asarray(
        rng.uniform(-1, 1, (network.timesteps, network.input_size)) * 4096,
        dtype=np.int64)


class TestShardPlan:
    def test_every_network_mapped_exactly_once(self):
        plan = ShardPlan(NETWORKS, 3)
        assert sorted(plan.shard_of) == sorted(n.name for n in NETWORKS)
        flattened = [n.name for nets in plan.networks_of for n in nets]
        assert sorted(flattened) == sorted(plan.shard_of)

    def test_balanced_within_one(self):
        plan = ShardPlan(NETWORKS, 3)
        sizes = [len(nets) for nets in plan.networks_of]
        assert max(sizes) - min(sizes) <= 1

    def test_stable_across_instances(self):
        assert (ShardPlan(NETWORKS, 4).shard_of
                == ShardPlan(NETWORKS, 4).shard_of)
        # Independent of input ordering: sharding ranks by name hash.
        shuffled = list(reversed(NETWORKS))
        assert (ShardPlan(shuffled, 4).shard_of
                == ShardPlan(NETWORKS, 4).shard_of)

    def test_more_shards_than_networks_clamps(self):
        plan = ShardPlan(NETWORKS, 100)
        assert plan.n_shards == len(NETWORKS)


class TestDeterminism:
    def _trace(self, seed):
        """Drive a fixed request trace; return the routing decisions."""
        router, stubs = _router(capacity=3)
        rng = np.random.default_rng(seed)
        decisions = []
        for i in range(60):
            network = NETWORKS[int(rng.integers(len(NETWORKS)))]
            request = router.submit(network.name, _x(network, i))
            if request.status == RequestStatus.PENDING:
                replica = next(s for s in stubs
                               if any(rid == request.id
                                      for rid, *_ in s.received))
                decisions.append(("routed", network.name, replica.name))
                # Complete every third accepted request so queues both
                # grow and drain along the trace.
                if i % 3 == 0:
                    router.complete(request.id, RequestStatus.DONE,
                                    None, 0.001, 1, None, replica.name)
            else:
                decisions.append((request.status, network.name, None))
        return decisions

    def test_same_seed_same_decisions(self):
        assert self._trace(11) == self._trace(11)

    def test_shard_assignment_follows_plan(self):
        router, stubs = _router(capacity=100)
        for network in NETWORKS:
            router.submit(network.name, _x(network))
        for stub in stubs:
            for _, name, _, _ in stub.received:
                assert (router.plan.shard_of[name] == stub.shard)

    def test_jsq_prefers_lowest_outstanding_then_index(self):
        router, stubs = _router(n_shards=1, replicas=3, capacity=10)
        network = NETWORKS[0]
        first = router.submit(network.name, _x(network))
        # Tie on outstanding=0 broken by index -> replica 0.
        assert stubs[0].received and not stubs[1].received
        second = router.submit(network.name, _x(network))
        assert stubs[1].received  # JSQ: replica 0 now has depth 1
        router.complete(first.id, RequestStatus.DONE, None, 0.0, 1,
                        None, stubs[0].name)
        router.submit(network.name, _x(network))
        # Replica 0 drained back to 0, replica 2 also at 0: index wins.
        assert len(stubs[0].received) == 2
        assert second.status == RequestStatus.PENDING


class TestBackpressure:
    def test_sheds_at_capacity_without_queueing(self):
        router, stubs = _router(n_shards=1, replicas=2, capacity=2)
        network = NETWORKS[0]
        accepted = [router.submit(network.name, _x(network))
                    for _ in range(4)]
        assert all(r.status == RequestStatus.PENDING for r in accepted)
        shed = router.submit(network.name, _x(network))
        assert shed.status == RequestStatus.REJECTED_CAPACITY
        assert shed.wait(timeout=0)  # settled synchronously
        # Nothing was forwarded for the shed request.
        total = sum(len(s.received) for s in stubs)
        assert total == 4

    def test_saturated_shard_does_not_touch_healthy_shard(self):
        router, stubs = _router(n_shards=2, replicas=1, capacity=1)
        shard_nets = {shard: [n for n in NETWORKS
                              if router.plan.shard_of[n.name] == shard]
                      for shard in (0, 1)}
        hot = shard_nets[0][0]
        cold = shard_nets[1][0]
        router.submit(hot.name, _x(hot))
        shed = router.submit(hot.name, _x(hot))
        assert shed.status == RequestStatus.REJECTED_CAPACITY
        ok = router.submit(cold.name, _x(cold))
        assert ok.status == RequestStatus.PENDING
        cold_stub = next(s for s in stubs if s.shard == 1)
        assert len(cold_stub.received) == 1

    def test_no_live_replica_rejects_unavailable(self):
        router, stubs = _router(n_shards=1, replicas=1)
        stubs[0].accepting = False
        request = router.submit(NETWORKS[0].name, _x(NETWORKS[0]))
        assert request.status == RequestStatus.REJECTED_UNAVAILABLE

    def test_unknown_network_raises(self):
        router, _ = _router()
        with pytest.raises(KeyError):
            router.submit("nope", np.zeros(4, dtype=np.int64))


class TestFailover:
    def test_dead_replica_inflight_redispatches_to_survivor(self):
        router, stubs = _router(n_shards=1, replicas=2, capacity=8)
        network = NETWORKS[0]
        requests = [router.submit(network.name, _x(network, i))
                    for i in range(4)]
        dead, survivor = stubs[0], stubs[1]
        assert dead.received and survivor.received
        dead_rids = {rid for rid, *_ in dead.received}
        counts = router.fail_replica(dead)
        assert counts["redispatched"] == len(dead_rids)
        assert counts["failed"] == 0
        # Every request the dead replica held was re-sent to the
        # survivor with the same rid and payload.
        survivor_rids = {rid for rid, *_ in survivor.received}
        assert dead_rids <= survivor_rids
        assert all(r.status == RequestStatus.PENDING for r in requests)
        assert dead.outstanding == 0

    def test_redispatch_bound_settles_failed(self):
        router, stubs = _router(n_shards=1, replicas=2, capacity=8)
        router.max_redispatch = 0
        network = NETWORKS[0]
        request = router.submit(network.name, _x(network))
        counts = router.fail_replica(stubs[0])
        assert counts == {"redispatched": 0, "failed": 1}
        assert request.status == RequestStatus.FAILED

    def test_fail_all_inflight(self):
        router, _ = _router(n_shards=1, replicas=1, capacity=8)
        network = NETWORKS[0]
        requests = [router.submit(network.name, _x(network, i))
                    for i in range(3)]
        assert router.fail_all_inflight("teardown") == 3
        assert all(r.status == RequestStatus.FAILED for r in requests)
        assert router.inflight_count() == 0


class TestCompletion:
    def test_complete_settles_with_latency_and_worker(self):
        router, stubs = _router(n_shards=1, replicas=1)
        network = NETWORKS[0]
        request = router.submit(network.name, _x(network))
        out = np.arange(3)
        router.complete(request.id, RequestStatus.DONE, out, 0.004, 5,
                        None, stubs[0].name)
        assert request.ok
        assert np.array_equal(request.result(timeout=0), out)
        assert request.service_latency == 0.004
        assert request.batch_size == 5
        assert request.worker == stubs[0].name
        assert request.latency is not None and request.latency >= 0
        assert stubs[0].outstanding == 0

    def test_late_response_for_unknown_rid_is_ignored(self):
        router, stubs = _router(n_shards=1, replicas=1)
        router.complete(10_000, RequestStatus.DONE, None, 0.0, 1, None,
                        stubs[0].name)  # must not raise

    def test_on_routed_hook_sees_per_shard_counts(self):
        seen = []
        router, _ = _router(n_shards=2, replicas=1, capacity=100,
                            on_routed=lambda s, c: seen.append((s, c)))
        for network in NETWORKS:
            router.submit(network.name, _x(network))
        for shard in (0, 1):
            counts = [c for s, c in seen if s == shard]
            assert counts == list(range(1, len(counts) + 1))
