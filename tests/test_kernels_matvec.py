"""Matvec kernels at all five levels: bit-exactness vs. the golden model
and exact agreement between the builder's static counts and the ISS."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Cpu, Memory
from repro.isa import assemble
from repro.kernels import (AsmBuilder, LEVELS, MatvecJob, gen_matvec,
                           padded_row, plan_tiles)
from repro.nn import dense_fixed

LEVEL_KEYS = ("a", "b", "c", "d", "e")


def run_matvec(level_key, w, x, bias, max_tile=10):
    """Generate, assemble and run one matvec; returns (out, iss, builder)."""
    level = LEVELS[level_key]
    n_out, n_in = w.shape
    row_hw = padded_row(n_in, level_key)
    w_addr, x_addr, b_addr, out_addr, acc = (0x1000, 0x4000, 0x5000,
                                             0x5800, 0x0FF0)
    builder = AsmBuilder()
    job = MatvecJob(n_in=n_in, n_out=n_out, w_addr=w_addr, x_addr=x_addr,
                    b_addr=b_addr, out_addr=out_addr, row_halfwords=row_hw,
                    acc_addr=acc, max_tile=max_tile)
    gen_matvec(builder, level, job)
    builder.emit("ebreak")
    mem = Memory(1 << 16)
    padded = np.zeros((n_out, row_hw), dtype=np.int64)
    padded[:, :n_in] = w
    mem.store_halfwords(w_addr, padded)
    xp = np.zeros(row_hw, dtype=np.int64)
    xp[:n_in] = x
    mem.store_halfwords(x_addr, xp)
    mem.store_halfwords(b_addr, bias)
    cpu = Cpu(assemble(builder.text()), mem, extensions=level.extensions)
    iss = cpu.run()
    out = mem.load_halfwords(out_addr, n_out)
    return out, iss, builder.trace


shapes = st.tuples(st.integers(1, 40), st.integers(1, 24))


class TestCorrectness:
    @pytest.mark.parametrize("level", LEVEL_KEYS)
    @given(shape=shapes, seed=st.integers(0, 10 ** 6))
    @settings(max_examples=12, deadline=None)
    def test_matches_golden(self, level, shape, seed):
        n_in, n_out = shape
        rng = np.random.default_rng(seed)
        w = rng.integers(-2000, 2000, (n_out, n_in))
        x = rng.integers(-2000, 2000, n_in)
        bias = rng.integers(-2000, 2000, n_out)
        out, _, _ = run_matvec(level, w, x, bias)
        assert np.array_equal(out, dense_fixed(w, x, bias))

    @pytest.mark.parametrize("level", LEVEL_KEYS)
    def test_extreme_values_saturate_consistently(self, level):
        w = np.full((4, 8), 32767, dtype=np.int64)
        x = np.full(8, 32767, dtype=np.int64)
        bias = np.full(4, 32767, dtype=np.int64)
        out, _, _ = run_matvec(level, w, x, bias)
        assert np.array_equal(out, dense_fixed(w, x, bias))

    @pytest.mark.parametrize("level", LEVEL_KEYS)
    def test_single_row_single_col(self, level):
        out, _, _ = run_matvec(level, np.array([[4096]]),
                               np.array([1234]), np.array([10]))
        assert out[0] == 1234 + 10

    @pytest.mark.parametrize("level", ("c", "d", "e"))
    @pytest.mark.parametrize("max_tile", (2, 4, 6, 8, 10))
    def test_every_tile_size(self, level, max_tile):
        rng = np.random.default_rng(max_tile)
        w = rng.integers(-1500, 1500, (13, 10))
        x = rng.integers(-1500, 1500, 10)
        bias = rng.integers(-1500, 1500, 13)
        out, _, _ = run_matvec(level, w, x, bias, max_tile=max_tile)
        assert np.array_equal(out, dense_fixed(w, x, bias))


class TestModelEqualsIss:
    @pytest.mark.parametrize("level", LEVEL_KEYS)
    @given(shape=shapes, seed=st.integers(0, 10 ** 6))
    @settings(max_examples=10, deadline=None)
    def test_trace_equality(self, level, shape, seed):
        n_in, n_out = shape
        rng = np.random.default_rng(seed)
        w = rng.integers(-2000, 2000, (n_out, n_in))
        x = rng.integers(-2000, 2000, n_in)
        bias = rng.integers(-2000, 2000, n_out)
        _, iss, model = run_matvec(level, w, x, bias)
        # drop the trailing ebreak from the ISS side for the comparison
        iss.instrs.pop("ebreak", None)
        iss.cycles.pop("ebreak", None)
        model.instrs.pop("ebreak", None)
        model.cycles.pop("ebreak", None)
        assert iss == model


class TestSpeedupOrdering:
    def test_levels_monotonically_faster(self):
        rng = np.random.default_rng(0)
        w = rng.integers(-2000, 2000, (30, 24))
        x = rng.integers(-2000, 2000, 24)
        bias = rng.integers(-2000, 2000, 30)
        cycles = {}
        for level in LEVEL_KEYS:
            _, iss, _ = run_matvec(level, w, x, bias)
            cycles[level] = iss.total_cycles
        assert cycles["a"] > cycles["b"] > cycles["c"] > cycles["d"] \
            >= cycles["e"]

    def test_ofm_tiling_shares_input_loads(self):
        rng = np.random.default_rng(1)
        w = rng.integers(-100, 100, (20, 40))
        x = rng.integers(-100, 100, 40)
        bias = rng.integers(-100, 100, 20)
        _, iss_b, _ = run_matvec("b", w, x, bias)
        _, iss_c, _ = run_matvec("c", w, x, bias)
        # level b: one x load per (pair, output); level c: one per
        # (pair, tile) -> ~2x fewer loads with N=10
        assert iss_c.instrs["lw!"] < 0.62 * iss_b.instrs["lw!"]

    def test_vliw_eliminates_weight_loads(self):
        rng = np.random.default_rng(2)
        w = rng.integers(-100, 100, (20, 40))
        x = rng.integers(-100, 100, 40)
        bias = rng.integers(-100, 100, 20)
        _, iss_c, _ = run_matvec("c", w, x, bias)
        _, iss_d, _ = run_matvec("d", w, x, bias)
        # weight loads fold into pl.sdotsp: remaining lw! is input-only
        assert iss_d.instrs["lw!"] < 0.15 * iss_c.instrs["lw!"]


class TestPlanTiles:
    @given(st.integers(1, 400), st.integers(1, 10))
    def test_tiles_cover_exactly(self, n_out, max_tile):
        tiles = plan_tiles(n_out, max_tile)
        assert sum(tiles) == n_out
        assert all(t >= 1 for t in tiles)
        assert all(t <= max_tile for t in tiles)
        # with real tiling available, at most one odd tile, of size 1
        # (max_tile == 1 degenerates to all-singleton tiles)
        odd = [t for t in tiles if t % 2]
        if max_tile >= 2:
            assert len(odd) <= 1
        assert all(t == 1 for t in odd)

    def test_errors(self):
        with pytest.raises(ValueError):
            plan_tiles(0, 10)
        with pytest.raises(ValueError):
            plan_tiles(5, 0)


class TestPaddedRow:
    @given(st.integers(1, 1000))
    def test_quanta(self, n):
        assert padded_row(n, "a") == n
        assert padded_row(n, "b") % 2 == 0
        assert padded_row(n, "d") - n in (0, 1)
        assert padded_row(n, "e") % 4 == 0
        assert 0 <= padded_row(n, "e") - n < 4
