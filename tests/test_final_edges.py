"""Last-mile edge cases across modules."""

import numpy as np
import pytest

from repro.core import Cpu, Memory
from repro.isa import assemble
from repro.isa.binary import roundtrip_program


class TestClipEdge:
    def test_clip_zero_bits(self):
        # p.clip rd, rs1, 0 clamps positives to 0, keeps negatives
        cpu = Cpu(assemble("p.clip a1, a0, 0\nebreak\n"))
        cpu.set_reg(10, 5)
        cpu.run()
        assert cpu.reg_s(11) == 0
        cpu.reset()
        cpu.set_reg(10, (-5) & 0xFFFFFFFF)
        cpu.run()
        assert cpu.reg_s(11) == -5


class TestMemoryBytes:
    def test_store_load_bytes_signed(self):
        mem = Memory(1 << 12)
        data = np.array([-128, -1, 0, 1, 127], dtype=np.int64)
        mem.store_bytes(0x101, data)  # deliberately unaligned
        out = mem.load_bytes(0x101, 5)
        assert np.array_equal(out, data)
        unsigned = mem.load_bytes(0x101, 5, signed=False)
        assert unsigned.tolist() == [128, 255, 0, 1, 127]


class TestBinaryRoundtripBreadth:
    def test_csr_and_loop_program(self):
        src = """
            csrr a0, mcycle
            li t0, 3
            lp.setup 1, t0, end
            addi a1, a1, 1
        end:
            csrrw a2, mscratch, a1
            csrrc a3, mscratch, a0
            ebreak
        """
        original = assemble(src)
        twin = roundtrip_program(original)

        def run(prog):
            cpu = Cpu(prog, Memory(1 << 12))
            cpu.run()
            return [cpu.reg(i) for i in range(32)], cpu.cycles

        assert run(original) == run(twin)


class TestPlaBoundaryValues:
    @pytest.mark.parametrize("raw", [
        0, 1, -1, 511, 512, 513,        # first interval boundary (2^9)
        16383, 16384, 16385,            # interpolation-range edge (4.0)
        32767, -32768,                  # int16 rails
        (1 << 31) - 1, -(1 << 31),      # int32 rails
    ])
    def test_instruction_equals_golden_at_boundaries(self, raw):
        from repro.fixedpoint import SIG_TABLE, TANH_TABLE, pla_apply
        for op, table in (("pl.tanh", TANH_TABLE), ("pl.sig", SIG_TABLE)):
            cpu = Cpu(assemble(f"{op} a1, a0\nebreak\n"))
            cpu.set_reg(10, raw & 0xFFFFFFFF)
            cpu.run()
            assert cpu.reg_s(11) == pla_apply(table, raw)


class TestSuiteRunnerUnchecked:
    def test_no_check_mode(self):
        from repro.rrm import SuiteRunner
        runner = SuiteRunner(scale=8, check=False)
        trace = runner.run_network(runner.networks[3], "d")
        assert trace.total_cycles > 0
