"""CLI contract for ``repro certify`` and the lint rule catalog.

Exit codes (documented in :mod:`repro.cli` and asserted here for both
``certify`` and ``lint``): 0 = everything proven/clean, 1 = unproven
accesses / findings, 2 = usage error (unknown network or level key).
"""

import json

import pytest

from repro.analysis.rules import Severity, rule_catalog
from repro.cli import main

CLEAN = """\
addi a0, x0, 256
addi t0, x0, 7
sw t0, 0(a0)
lw t1, 4(a0)
ebreak
"""

# t0 is loaded from memory (TOP), so the second lw cannot be proven.
UNPROVEN = """\
lw t0, 0(x0)
lw t1, 0(t0)
ebreak
"""


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.s"
    path.write_text(CLEAN)
    return str(path)


@pytest.fixture
def unproven_file(tmp_path):
    path = tmp_path / "oob.s"
    path.write_text(UNPROVEN)
    return str(path)


class TestCertifyExitCodes:
    def test_clean_file_exits_zero(self, clean_file, capsys):
        assert main(["certify", clean_file]) == 0
        out = capsys.readouterr().out
        assert "unproven=0" in out
        assert "0 unproven access(es)" in out

    def test_unproven_file_exits_one(self, unproven_file, capsys):
        assert main(["certify", unproven_file]) == 1
        out = capsys.readouterr().out
        assert "UNPROVEN lw" in out

    def test_unknown_network_exits_two(self, capsys):
        assert main(["certify", "--kernels",
                     "--networks", "nosuchnet"]) == 2
        assert "unknown network" in capsys.readouterr().err

    def test_unknown_level_exits_two(self, capsys):
        assert main(["certify", "--kernels", "--levels", "z"]) == 2
        assert "unknown level" in capsys.readouterr().err


class TestCertifyJson:
    def test_document_shape(self, clean_file, unproven_file, capsys):
        rc = main(["certify", clean_file, unproven_file, "--json"])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["total_unproven"] == 1
        assert doc["proven"] is False
        names = [r["name"] for r in doc["results"]]
        assert names == [clean_file, unproven_file]
        clean, bad = doc["results"]
        assert clean["proven"] and not clean["unproven"]
        assert clean["mode"] == "structured"
        assert "footprint" in clean and "loops" in clean
        [access] = bad["unproven"]
        assert access["mnemonic"] == "lw" and access["reason"]

    def test_full_dump(self, clean_file, capsys):
        assert main(["certify", clean_file, "--json", "--full"]) == 0
        [res] = json.loads(capsys.readouterr().out)["results"]
        assert res["accesses_detail"]
        assert res["reg_before"]

    def test_kernels_selection_proven(self, capsys):
        # Acceptance slice of the suite gate: generated kernels certify
        # with zero unproven accesses and all trips proven.
        rc = main(["certify", "--kernels",
                   "--networks", "challita2017", "--levels", "ad",
                   "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["proven"] is True
        assert {r["name"] for r in doc["results"]} == \
            {"challita2017/a", "challita2017/d"}
        for res in doc["results"]:
            assert res["mode"] == "structured"
            assert all(lf["trip"] is not None for lf in res["loops"])


class TestLintContract:
    def test_clean_file_exits_zero(self, clean_file):
        assert main(["lint", clean_file]) == 0

    def test_warnings_alone_exit_zero(self, tmp_path, capsys):
        path = tmp_path / "stall.s"
        path.write_text("lw t0, 0(x0)\nlw t1, 0(t0)\nebreak\n")
        assert main(["lint", str(path)]) == 0
        assert "load-use-stall" in capsys.readouterr().out

    def test_error_findings_exit_one(self, tmp_path, capsys):
        # A load as the last hardware-loop body instruction is an
        # error-severity finding (the core refuses to execute it).
        path = tmp_path / "hwload.s"
        path.write_text("lp.setupi 0, 2, end\n"
                        "addi t0, x0, 0\n"
                        "lw t1, 0(x0)\n"
                        "end:\n"
                        "ebreak\n")
        assert main(["lint", str(path)]) == 1
        assert "hwloop-load-end" in capsys.readouterr().out

    def test_unknown_network_exits_two(self):
        assert main(["lint", "--kernels", "--networks", "bogus"]) == 2

    def test_json_carries_rule_catalog(self, clean_file, capsys):
        assert main(["lint", clean_file, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["rules"] == rule_catalog()

    def test_absint_rules_fire(self, unproven_file, capsys):
        assert main(["lint", unproven_file, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        rules = {f["rule"] for r in doc["results"]
                 for f in r["findings"]}
        assert "possible-oob" in rules


class TestRuleCatalog:
    def test_stable_ids_and_shape(self):
        catalog = rule_catalog()
        for rule_id in ("load-use-stall", "hwloop-malformed",
                        "use-before-def", "possible-oob",
                        "unproven-saturation", "unbounded-trip"):
            assert rule_id in catalog
        for rule_id, info in catalog.items():
            assert rule_id == rule_id.lower()
            assert info["severity"] in (Severity.ERROR,
                                        Severity.WARNING, Severity.INFO)
            assert info["summary"]

    def test_new_rule_severities(self):
        catalog = rule_catalog()
        assert catalog["possible-oob"]["severity"] == Severity.WARNING
        assert catalog["unproven-saturation"]["severity"] == Severity.INFO
        assert catalog["unbounded-trip"]["severity"] == Severity.WARNING
