"""Activation-pass and LSTM-pointwise kernels vs. the golden models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Cpu, Memory
from repro.fixedpoint import SIG_TABLE, TANH_TABLE, sig_q, tanh_q
from repro.isa import assemble
from repro.kernels import (ActivationJob, AsmBuilder, LEVELS, PointwiseJob,
                           gen_activation, gen_lstm_pointwise)

LEVEL_KEYS = ("a", "b", "c", "d", "e")
LUT_M_T, LUT_Q_T = 0x0800, 0x0900
LUT_M_S, LUT_Q_S = 0x0A00, 0x0B00
DATA = 0x2000


def _memory():
    mem = Memory(1 << 16)
    mem.store_halfwords(LUT_M_T, TANH_TABLE.slopes)
    mem.store_halfwords(LUT_Q_T, TANH_TABLE.offsets)
    mem.store_halfwords(LUT_M_S, SIG_TABLE.slopes)
    mem.store_halfwords(LUT_Q_S, SIG_TABLE.offsets)
    return mem


def run_activation(level_key, func, values):
    level = LEVELS[level_key]
    values = np.asarray(values, dtype=np.int64)
    mem = _memory()
    mem.store_halfwords(DATA, values)
    builder = AsmBuilder()
    lut_m = LUT_M_T if func == "tanh" else LUT_M_S
    lut_q = LUT_Q_T if func == "tanh" else LUT_Q_S
    gen_activation(builder, level, ActivationJob(
        func=func, addr=DATA, count=values.size,
        lut_m_addr=lut_m, lut_q_addr=lut_q))
    builder.emit("ebreak")
    cpu = Cpu(assemble(builder.text()), mem, extensions=level.extensions)
    iss = cpu.run()
    return mem.load_halfwords(DATA, values.size), iss, builder.trace


class TestActivationPasses:
    @pytest.mark.parametrize("level", LEVEL_KEYS)
    @pytest.mark.parametrize("func", ("tanh", "sig"))
    @given(values=st.lists(st.integers(-32768, 32767), min_size=1,
                           max_size=40))
    @settings(max_examples=6, deadline=None)
    def test_matches_golden(self, level, func, values):
        out, _, _ = run_activation(level, func, values)
        golden = tanh_q(values) if func == "tanh" else sig_q(values)
        assert np.array_equal(out, golden)

    @pytest.mark.parametrize("level", LEVEL_KEYS)
    @given(values=st.lists(st.integers(-32768, 32767), min_size=1,
                           max_size=30))
    @settings(max_examples=6, deadline=None)
    def test_relu(self, level, values):
        out, _, _ = run_activation(level, "relu", values)
        assert np.array_equal(out, np.maximum(np.asarray(values), 0))

    @pytest.mark.parametrize("level", LEVEL_KEYS)
    @pytest.mark.parametrize("func", ("tanh", "sig", "relu"))
    def test_model_equals_iss(self, level, func):
        rng = np.random.default_rng(42)
        values = rng.integers(-32768, 32768, 23)
        _, iss, model = run_activation(level, func, values)
        for trace in (iss, model):
            trace.instrs.pop("ebreak", None)
            trace.cycles.pop("ebreak", None)
        assert iss == model

    def test_hw_levels_use_single_cycle_instructions(self):
        values = np.arange(-20, 20) * 500
        _, iss, _ = run_activation("d", "tanh", values)
        assert iss.instrs["tanh,sig"] == values.size
        assert iss.cycles["tanh,sig"] == values.size

    def test_sw_levels_cost_tens_of_cycles_per_value(self):
        values = np.arange(-10, 10) * 800
        _, iss_b, _ = run_activation("b", "sig", values)
        per_value = iss_b.total_cycles / values.size
        assert 25 <= per_value <= 45

    def test_chunking_beyond_hwloop_limit(self):
        rng = np.random.default_rng(7)
        values = rng.integers(-32768, 32768, 1200)  # > 511
        out, _, _ = run_activation("c", "tanh", values)
        assert np.array_equal(out, tanh_q(values))

    def test_empty_rejected(self):
        builder = AsmBuilder()
        with pytest.raises(ValueError):
            gen_activation(builder, LEVELS["c"], ActivationJob(
                func="tanh", addr=DATA, count=0))

    def test_sw_needs_luts(self):
        builder = AsmBuilder()
        with pytest.raises(ValueError):
            gen_activation(builder, LEVELS["a"], ActivationJob(
                func="tanh", addr=DATA, count=4))


def run_pointwise(level_key, i, f, o, g, c):
    level = LEVELS[level_key]
    n = len(c)
    addrs = {k: DATA + 0x200 * idx
             for idx, k in enumerate("ifogch")}
    mem = _memory()
    for key, vec in zip("ifogc", (i, f, o, g, c)):
        mem.store_halfwords(addrs[key], np.asarray(vec, dtype=np.int64))
    builder = AsmBuilder()
    gen_lstm_pointwise(builder, level, PointwiseJob(
        n=n, i_addr=addrs["i"], f_addr=addrs["f"], o_addr=addrs["o"],
        g_addr=addrs["g"], c_addr=addrs["c"], h_addr=addrs["h"],
        lut_m_addr=LUT_M_T, lut_q_addr=LUT_Q_T))
    builder.emit("ebreak")
    cpu = Cpu(assemble(builder.text()), mem, extensions=level.extensions)
    iss = cpu.run()
    return (mem.load_halfwords(addrs["c"], n),
            mem.load_halfwords(addrs["h"], n), iss, builder.trace)


def golden_pointwise(i, f, o, g, c):
    i, f, o, g, c = (np.asarray(v, dtype=np.int64) for v in (i, f, o, g, c))
    c_new = np.clip((i * g >> 12) + (f * c >> 12), -32768, 32767)
    h_new = (o * tanh_q(c_new)) >> 12
    return c_new, h_new


gate = st.integers(0, 4096)       # sigmoid outputs live in [0, 1]
signed_q = st.integers(-4096, 4096)


class TestPointwise:
    @pytest.mark.parametrize("level", LEVEL_KEYS)
    @given(data=st.lists(st.tuples(gate, gate, gate, signed_q, signed_q),
                         min_size=1, max_size=16))
    @settings(max_examples=6, deadline=None)
    def test_matches_golden(self, level, data):
        i, f, o, g, c = (list(col) for col in zip(*data))
        c_out, h_out, _, _ = run_pointwise(level, i, f, o, g, c)
        c_ref, h_ref = golden_pointwise(i, f, o, g, c)
        assert np.array_equal(c_out, c_ref)
        assert np.array_equal(h_out, h_ref)

    @pytest.mark.parametrize("level", LEVEL_KEYS)
    def test_model_equals_iss(self, level):
        rng = np.random.default_rng(3)
        i, f, o = (rng.integers(0, 4097, 12) for _ in range(3))
        g, c = (rng.integers(-4096, 4097, 12) for _ in range(2))
        _, _, iss, model = run_pointwise(level, i, f, o, g, c)
        for trace in (iss, model):
            trace.instrs.pop("ebreak", None)
            trace.cycles.pop("ebreak", None)
        assert iss == model

    def test_cell_state_saturation(self):
        # i*g + f*c can exceed int16: both paths must clamp identically
        i = [4096]
        g = [32767]
        f = [4096]
        c = [32767]
        o = [4096]
        c_out, h_out, _, _ = run_pointwise("d", i, f, o, g, c)
        c_ref, h_ref = golden_pointwise(i, f, o, g, c)
        assert c_out.tolist() == c_ref.tolist() == [32767]
        assert h_out.tolist() == h_ref.tolist()
