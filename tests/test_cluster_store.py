"""Shared weight store: layout round-trip, immutability, registry parity."""

import numpy as np
import pytest

from repro.cluster.store import SharedWeightStore, StoreBackedRegistry
from repro.rrm.networks import suite
from repro.serve.engine import ModelRegistry

NETWORKS = suite(4)


@pytest.fixture()
def store():
    store = SharedWeightStore.create(NETWORKS, seed=2020)
    yield store
    store.unlink()


def test_roundtrip_bitexact_vs_registry(store):
    registry = ModelRegistry(seed=2020)
    for network in NETWORKS:
        want = registry.get(network, "e").params_raw
        got = store.params_for(network.name)
        assert len(got) == len(want)
        for layer_want, layer_got in zip(want, got):
            assert sorted(layer_want) == sorted(layer_got)
            for key in layer_want:
                assert layer_got[key].dtype == np.int64
                assert np.array_equal(layer_want[key], layer_got[key])


def test_attach_sees_same_bits(store):
    attached = SharedWeightStore.attach(store.descriptor)
    try:
        name = NETWORKS[0].name
        for layer_a, layer_b in zip(store.params_for(name),
                                    attached.params_for(name)):
            for key in layer_a:
                assert np.array_equal(layer_a[key], layer_b[key])
    finally:
        attached.close()


def test_shared_views_are_readonly(store):
    params = store.params_for(NETWORKS[0].name)
    array = next(iter(params[0].values()))
    with pytest.raises(ValueError):
        array[...] = 0


def test_private_copies_are_writable_and_isolated(store):
    name = NETWORKS[0].name
    private = store.params_for(name, copy=True)
    array = next(iter(private[0].values()))
    key = next(iter(private[0]))
    original = array.copy()
    array += 1  # a chaos bit-flip analogue
    shared = store.params_for(name)
    assert np.array_equal(shared[0][key], original)


def test_unknown_network_raises(store):
    with pytest.raises(KeyError):
        store.params_for("nope")


def test_nbytes_positive(store):
    assert store.nbytes > 0
    assert store.nbytes % 8 == 0


def test_store_backed_registry_matches_plain_registry(store):
    plain = ModelRegistry(seed=2020)
    backed = StoreBackedRegistry(store, seed=2020)
    network = NETWORKS[0]
    a = plain.get(network, "e")
    b = backed.get(network, "e")
    assert a.cycles_per_request == b.cycles_per_request
    assert a.checksums == b.checksums
    x = np.asarray(
        np.random.default_rng(0).uniform(
            -1, 1, (network.timesteps, network.input_size)) * 4096,
        dtype=np.int64)
    a.reference.reset()
    b.reference.reset()
    assert np.array_equal(a.reference.forward(x), b.reference.forward(x))


def test_store_backed_registry_mutable_mode_repairs(store):
    backed = StoreBackedRegistry(store, seed=2020, mutable=True)
    entry = backed.get(NETWORKS[0], "e")
    array = next(iter(entry.params_raw[0].values()))
    array[0] ^= 1  # corrupt one weight
    assert backed.verify(entry)
    assert backed.repair(entry) >= 1
    assert not backed.verify(entry)


def test_inline_fallback_roundtrip():
    store = SharedWeightStore.create(NETWORKS[:2], seed=2020)
    inline = SharedWeightStore(
        None, {**store.descriptor, "mode": "inline",
               "params": {net.name:
                          [dict(layer) for layer in
                           store.params_for(net.name, copy=True)]
                          for net in NETWORKS[:2]}}, owner=True)
    try:
        name = NETWORKS[0].name
        for layer_a, layer_b in zip(store.params_for(name),
                                    inline.params_for(name)):
            for key in layer_a:
                assert np.array_equal(layer_a[key], layer_b[key])
        assert inline.nbytes == store.nbytes
    finally:
        store.unlink()
