"""Engine lifecycle: restart, non-drained stop, thread hygiene, and the
dead-worker drain path (no request may ever be left stranded)."""

import threading
import time

import numpy as np

from repro.faults import FaultInjector, FaultSpec
from repro.rrm.networks import suite
from repro.serve.engine import (EngineConfig, InferenceEngine, RequestStatus)

NETWORKS = suite(4)
BY_NAME = {net.name: net for net in NETWORKS}


def _input(network, seed=0):
    rng = np.random.default_rng(seed)
    floats = rng.uniform(-1.0, 1.0, network.input_size)
    return np.asarray(floats * 4096, dtype=np.int64)


def _engine(specs=None, **overrides):
    defaults = dict(level="e", max_batch_size=8, max_linger_s=0.001)
    defaults.update(overrides)
    injector = None if specs is None else FaultInjector(specs, seed=2020)
    return InferenceEngine(networks=NETWORKS,
                           config=EngineConfig(**defaults),
                           fault_injector=injector)


class TestRestart:
    def test_stop_then_start_serves_again(self):
        engine = _engine()
        name = "sun2017"
        engine.start()
        first = engine.submit(name, _input(BY_NAME[name]))
        assert first.wait(timeout=10.0) and first.ok
        engine.stop()
        engine.start()
        second = engine.submit(name, _input(BY_NAME[name], 1))
        assert second.wait(timeout=10.0) and second.ok
        engine.stop()
        assert engine.metrics.network(name).completed.value == 2

    def test_restart_resets_breakers_and_restart_budget(self):
        name = "challita2017"
        engine = _engine(
            [FaultSpec(kind="crash", network=name, start=0, stop=1,
                       transient=False)],
            breaker_failure_threshold=1, breaker_backoff_s=30.0,
            breaker_backoff_max_s=30.0, failed_single_retries=0)
        doomed = engine.submit(name, _input(BY_NAME[name]))
        engine.start()
        assert doomed.wait(timeout=10.0)
        assert engine.breakers[name].state == "open"
        engine.stop()
        # A restart is a clean slate: the breaker is closed again and a
        # request outside the fault window (seq 1) is served normally.
        engine.start()
        assert engine.breakers[name].state == "closed"
        request = engine.submit(name, _input(BY_NAME[name], 1))
        assert request.wait(timeout=10.0) and request.ok
        engine.stop()

    def test_start_is_idempotent(self):
        engine = _engine()
        before = len(threading.enumerate())
        engine.start()
        spawned = len(threading.enumerate()) - before
        engine.start()  # no-op: must not double-spawn
        assert len(threading.enumerate()) - before == spawned
        engine.stop()


class TestStopSettlement:
    def test_stop_without_drain_settles_pending(self):
        # Huge linger + batch size keep submissions queued; a non-drained
        # stop must still give every one of them a terminal status.
        engine = _engine(max_linger_s=30.0, max_batch_size=64)
        name = "wang2018"
        engine.start()
        requests = [engine.submit(name, _input(BY_NAME[name], i))
                    for i in range(5)]
        engine.stop(drain=False)
        for request in requests:
            assert request._done.is_set()
            assert request.status in (RequestStatus.FAILED,
                                      RequestStatus.DONE)
        failed = [r for r in requests if r.status == RequestStatus.FAILED]
        assert all(r.error == "engine stopped" for r in failed)

    def test_stop_on_never_started_engine_settles_pre_start_backlog(self):
        engine = _engine()
        name = "yu2017"
        requests = [engine.submit(name, _input(BY_NAME[name], i))
                    for i in range(3)]
        engine.stop()
        for request in requests:
            assert request.status == RequestStatus.FAILED
            assert request.error == "engine stopped"

    def test_drain_with_dead_worker_returns_promptly(self):
        # A worker killed with its restart budget exhausted must not make
        # stop(drain=True) sit out the full drain deadline: _drain fails
        # the backlog as soon as it sees the worker is gone for good.
        # The watchdog's revive is disabled so the drain path itself (not
        # the watchdog, which would normally race it to the cleanup) has
        # to handle it.
        name = "sun2017"
        engine = _engine(
            [FaultSpec(kind="kill", network=name, start=0, stop=1)],
            max_worker_restarts=0, watchdog_interval_s=30.0,
            worker_stall_timeout_s=30.0)
        engine._revive = lambda queue: None
        killed = engine.submit(name, _input(BY_NAME[name]))
        engine.start()
        thread = engine._queues[name].thread
        deadline = time.monotonic() + 10.0
        while thread.is_alive() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not thread.is_alive()
        backlog = [engine.submit(name, _input(BY_NAME[name], i))
                   for i in range(1, 4)]
        started = time.monotonic()
        engine.stop(drain=True)
        assert time.monotonic() - started < 5.0
        assert killed.status == RequestStatus.FAILED
        for request in backlog:
            assert request.status == RequestStatus.FAILED
            assert request.error in ("worker dead at drain",
                                     "engine stopped")

    def test_drained_stop_completes_backlog(self):
        engine = _engine()
        name = "naparstek2019"
        engine.start()
        requests = [engine.submit(name, _input(BY_NAME[name], i))
                    for i in range(20)]
        engine.stop()  # drain=True: backlog served, not failed
        assert all(r.ok for r in requests)


class TestThreadHygiene:
    def test_no_thread_leak_across_restarts(self):
        before = set(threading.enumerate())
        engine = _engine()
        name = "lee2018"
        for round_ in range(3):
            engine.start()
            request = engine.submit(name, _input(BY_NAME[name], round_))
            assert request.wait(timeout=10.0) and request.ok
            engine.stop()
        leaked = set(threading.enumerate()) - before
        assert leaked == set(), f"leaked threads: {leaked}"

    def test_watchdog_restart_does_not_leak_threads(self):
        name = "sun2017"
        before = set(threading.enumerate())
        engine = _engine(
            [FaultSpec(kind="kill", network=name, start=0, stop=1)],
            watchdog_interval_s=0.01)
        killed = engine.submit(name, _input(BY_NAME[name]))
        with engine:
            assert killed.wait(timeout=10.0)
            revived = engine.submit(name, _input(BY_NAME[name], 5))
            assert revived.wait(timeout=10.0) and revived.ok
        leaked = set(threading.enumerate()) - before
        assert leaked == set(), f"leaked threads: {leaked}"

    def test_all_engine_threads_are_daemonic(self):
        engine = _engine()
        with engine:
            serve_threads = [t for t in threading.enumerate()
                             if t.name.startswith("serve-")]
            assert serve_threads
            assert all(t.daemon for t in serve_threads)
