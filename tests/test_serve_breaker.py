"""Circuit-breaker state machine (``repro.serve.breaker``), fake clock."""

import pytest

from repro.serve.breaker import BreakerState, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def _breaker(**kw):
    clock = FakeClock()
    transitions = []
    kw.setdefault("failure_threshold", 3)
    kw.setdefault("backoff_s", 1.0)
    kw.setdefault("backoff_max_s", 8.0)
    kw.setdefault("probe_quota", 2)
    breaker = CircuitBreaker(
        clock=clock,
        on_transition=lambda old, new: transitions.append((old, new)),
        **kw)
    return breaker, clock, transitions


def _trip(breaker, n=3):
    for _ in range(n):
        breaker.record_failure()


class TestValidation:
    def test_bad_arguments(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(backoff_s=0)
        with pytest.raises(ValueError):
            CircuitBreaker(backoff_s=2.0, backoff_max_s=1.0)
        with pytest.raises(ValueError):
            CircuitBreaker(probe_quota=0)


class TestStateMachine:
    def test_threshold_opens(self):
        breaker, _clock, transitions = _breaker()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BreakerState.CLOSED
        assert breaker.allow_request()
        breaker.record_failure()
        assert breaker.state == BreakerState.OPEN
        assert not breaker.allow_request()
        assert transitions == [("closed", "open")]

    def test_success_resets_consecutive_count(self):
        breaker, _clock, _ = _breaker()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BreakerState.CLOSED

    def test_backoff_gates_half_open(self):
        breaker, clock, _ = _breaker()
        _trip(breaker)
        clock.advance(0.99)
        assert not breaker.allow_request()
        assert breaker.state == BreakerState.OPEN
        clock.advance(0.02)
        assert breaker.allow_request()
        assert breaker.state == BreakerState.HALF_OPEN

    def test_probe_quota_limits_half_open_admission(self):
        breaker, clock, _ = _breaker(probe_quota=2)
        _trip(breaker)
        clock.advance(1.5)
        assert breaker.allow_request()
        assert breaker.allow_request()
        assert not breaker.allow_request()  # quota exhausted
        breaker.record_success()
        assert breaker.state == BreakerState.CLOSED
        assert breaker.allow_request()

    def test_probe_failure_reopens_and_doubles_backoff(self):
        breaker, clock, transitions = _breaker()
        _trip(breaker)  # open, backoff 1s
        clock.advance(1.5)
        assert breaker.allow_request()  # half-open
        breaker.record_failure()  # single failure trips from half-open
        assert breaker.state == BreakerState.OPEN
        # Backoff now 2s: not admitted after 1.5s, admitted after 2.5s.
        clock.advance(1.5)
        assert not breaker.allow_request()
        clock.advance(1.0)
        assert breaker.allow_request()
        assert transitions == [("closed", "open"), ("open", "half_open"),
                               ("half_open", "open"), ("open", "half_open")]

    def test_backoff_caps(self):
        breaker, clock, _ = _breaker(backoff_s=1.0, backoff_max_s=4.0)
        _trip(breaker)
        for _ in range(5):  # repeated probe failures: 2, 4, 4, 4, 4
            clock.advance(100.0)
            assert breaker.allow_request()
            breaker.record_failure()
        clock.advance(3.9)
        assert not breaker.allow_request()
        clock.advance(0.2)
        assert breaker.allow_request()

    def test_success_after_probe_resets_backoff(self):
        breaker, clock, _ = _breaker()
        _trip(breaker)
        clock.advance(1.5)
        assert breaker.allow_request()
        breaker.record_failure()  # backoff -> 2s
        clock.advance(2.5)
        assert breaker.allow_request()
        breaker.record_success()  # closed, backoff back to 1s
        _trip(breaker)
        clock.advance(1.1)
        assert breaker.allow_request()  # 1s backoff again, not 4s

    def test_force_open_indefinitely(self):
        breaker, clock, _ = _breaker()
        breaker.force_open()
        assert breaker.state == BreakerState.OPEN
        clock.advance(1e9)
        assert not breaker.allow_request()

    def test_force_open_bounded(self):
        breaker, clock, _ = _breaker()
        breaker.force_open(duration_s=5.0)
        clock.advance(4.9)
        assert not breaker.allow_request()
        clock.advance(0.2)
        assert breaker.allow_request()

    def test_reset_restores_pristine_closed(self):
        breaker, clock, _ = _breaker()
        _trip(breaker)
        clock.advance(1.5)
        breaker.allow_request()
        breaker.record_failure()  # backoff doubled
        breaker.reset()
        assert breaker.state == BreakerState.CLOSED
        assert breaker.consecutive_failures == 0
        assert breaker.allow_request()
        # Backoff is back to the initial value after a fresh trip.
        _trip(breaker)
        clock.advance(1.1)
        assert breaker.allow_request()

    def test_transition_callback_not_fired_on_noop(self):
        breaker, _clock, transitions = _breaker()
        breaker.record_success()  # already closed
        assert transitions == []
