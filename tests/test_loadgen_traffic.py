"""Traffic models: determinism, mean-rate normalisation, tenant mixes."""

import numpy as np
import pytest

from repro.rrm.networks import suite
from repro.serve.loadgen import (LoadGenerator, TrafficModel,
                                 make_request_stream, make_tenant_stream)

NETWORKS = suite(4)


class TestTrafficModel:
    @pytest.mark.parametrize("kind", TrafficModel.KINDS)
    def test_arrivals_deterministic_and_monotone(self, kind):
        model = TrafficModel(kind=kind)
        a = model.arrival_times(200, rate_rps=100.0, seed=7)
        b = model.arrival_times(200, rate_rps=100.0, seed=7)
        assert np.array_equal(a, b)
        assert np.all(np.diff(a) > 0)
        assert a[0] > 0

    def test_different_seeds_differ(self):
        model = TrafficModel(kind="bursty")
        a = model.arrival_times(50, 100.0, seed=1)
        b = model.arrival_times(50, 100.0, seed=2)
        assert not np.array_equal(a, b)

    @pytest.mark.parametrize("kind", TrafficModel.KINDS)
    def test_mean_rate_approximately_preserved(self, kind):
        # Every modulation is normalised by its long-run mean, so the
        # *average* offered load matches plain Poisson to ~15%.
        model = TrafficModel(kind=kind)
        times = model.arrival_times(4000, rate_rps=1000.0, seed=3)
        achieved = len(times) / times[-1]
        assert achieved == pytest.approx(1000.0, rel=0.15)

    def test_bursty_has_heavier_tail_than_poisson(self):
        n, rate = 4000, 1000.0
        poisson = TrafficModel().arrival_times(n, rate, seed=5)
        bursty = TrafficModel(
            kind="bursty", burst_rate_multiplier=8.0).arrival_times(
                n, rate, seed=5)
        # Burst phases compress inter-arrivals: the gap distribution's
        # dispersion (CV) must exceed the exponential's CV of 1.
        def cv(times):
            gaps = np.diff(times)
            return float(np.std(gaps) / np.mean(gaps))
        assert cv(bursty) > cv(poisson) * 1.1

    def test_diurnal_rate_actually_varies(self):
        n, rate = 2000, 1000.0
        times = TrafficModel(kind="diurnal",
                             diurnal_depth=0.9).arrival_times(
                                 n, rate, seed=9)
        # Split the run into quarters: peak quarter must see far more
        # arrivals than trough quarter under a 0.9-depth sinusoid.
        quarters = np.searchsorted(
            times, np.linspace(0, times[-1], 5)[1:-1])
        counts = np.diff(np.concatenate([[0], quarters, [n]]))
        assert max(counts) > 1.5 * min(counts)

    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficModel(kind="tidal")
        with pytest.raises(ValueError):
            TrafficModel(diurnal_depth=1.0)
        with pytest.raises(ValueError):
            TrafficModel(burst_rate_multiplier=0.5)

    def test_to_dict_only_carries_relevant_knobs(self):
        assert TrafficModel().to_dict() == {"kind": "poisson"}
        bursty = TrafficModel(kind="bursty").to_dict()
        assert "burst_rate_multiplier" in bursty
        assert "diurnal_depth" not in bursty
        both = TrafficModel(kind="diurnal-bursty").to_dict()
        assert "burst_rate_multiplier" in both
        assert "diurnal_depth" in both


class TestTenantStream:
    def test_stream_shape_matches_uniform_stream(self):
        stream, info = make_tenant_stream(NETWORKS, 40, n_tenants=4,
                                          seed=11)
        uniform = make_request_stream(NETWORKS, 40, seed=11)
        assert len(stream) == len(uniform)
        for network, x in stream:
            assert network in NETWORKS
            assert x.shape == (network.timesteps, network.input_size)
            assert x.dtype == np.int64

    def test_deterministic(self):
        a, info_a = make_tenant_stream(NETWORKS, 30, seed=13)
        b, info_b = make_tenant_stream(NETWORKS, 30, seed=13)
        assert info_a["mixes"] == info_b["mixes"]
        for (net_a, x_a), (net_b, x_b) in zip(a, b):
            assert net_a.name == net_b.name
            assert np.array_equal(x_a, x_b)

    def test_tenants_round_robin_and_mixes_sum_to_one(self):
        n_tenants = 3
        stream, info = make_tenant_stream(NETWORKS, 31,
                                          n_tenants=n_tenants, seed=17)
        assert info["tenant_of"] == [i % n_tenants for i in range(31)]
        assert len(info["mixes"]) == n_tenants
        for mix in info["mixes"].values():
            assert sum(mix.values()) == pytest.approx(1.0, abs=0.01)

    def test_low_concentration_skews_mixes(self):
        def mean_top_share(concentration):
            _, info = make_tenant_stream(NETWORKS, 10, n_tenants=4,
                                         seed=19,
                                         concentration=concentration)
            tops = [max(mix.values())
                    for mix in info["mixes"].values()]
            return sum(tops) / len(tops)

        # Low concentration concentrates each tenant's traffic on a few
        # networks; high concentration approaches the uniform mix
        # (top share -> 1/len(NETWORKS)).
        assert mean_top_share(0.1) > 2 * mean_top_share(50.0)
        assert mean_top_share(50.0) < 2.0 / len(NETWORKS)

    def test_needs_a_tenant(self):
        with pytest.raises(ValueError):
            make_tenant_stream(NETWORKS, 10, n_tenants=0)


class TestGeneratorIntegration:
    class _NullEngine:
        """Accepts everything instantly (duck-typed engine)."""

        class _Request:
            status = "done"
            ok = True

            def wait(self, timeout=None):
                return True

        def submit(self, name, x_raw, timeout_s=None):
            return self._Request()

    def test_generator_accepts_traffic_model(self):
        generator = LoadGenerator(self._NullEngine(), rate_rps=50_000.0,
                                  traffic=TrafficModel(kind="bursty"))
        summary = generator.run(make_request_stream(NETWORKS, 20))
        assert summary["submitted"] == 20
        assert summary["traffic"]["kind"] == "bursty"
        assert summary["interrupted"] is False
