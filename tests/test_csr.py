"""Zicsr subset: the RI5CY performance counters and mscratch."""

import pytest

from repro.core import Cpu
from repro.isa import assemble, decode, encode
from repro.isa.csr import CSR_BY_NAME, csr_name, csr_number


class TestCsrNames:
    def test_lookup(self):
        assert csr_number("mcycle") == 0xB00
        assert csr_number("0xb02") == 0xB02
        assert csr_number(0x340) == 0x340

    def test_errors(self):
        with pytest.raises(ValueError):
            csr_number("nope")
        with pytest.raises(ValueError):
            csr_number(0x1000)

    def test_names(self):
        assert csr_name(0xB00) == "mcycle"
        assert csr_name(0x123) == "0x123"
        assert set(CSR_BY_NAME) >= {"mcycle", "minstret", "mhartid"}


class TestCsrEncoding:
    def test_roundtrip(self):
        prog = assemble("csrrs a0, mcycle, x0\ncsrrw a1, mscratch, a2\n")
        for instr in prog:
            twin = decode(encode(instr))
            assert (twin.mnemonic, twin.rd, twin.rs1, twin.imm) == \
                (instr.mnemonic, instr.rd, instr.rs1, instr.imm)

    def test_disassembly(self):
        prog = assemble("csrr a0, minstret\n")
        assert str(prog[0]) == "csrrs a0, minstret, zero"


class TestCsrSemantics:
    def test_mcycle_counts_cycles(self):
        cpu = Cpu(assemble("""
            csrr a0, mcycle
            addi t0, t0, 1
            addi t0, t0, 1
            beq x0, x0, skip     # taken: 2 cycles
        skip:
            csrr a1, mcycle
            ebreak
        """))
        cpu.run()
        # between the two reads: csrr(1) + addi(1) + addi(1) + beq(2) = 5
        assert cpu.reg(11) - cpu.reg(10) == 5

    def test_minstret_counts_instructions(self):
        cpu = Cpu(assemble("""
            csrr a0, minstret
            lp.setupi 0, 10, end
            addi t0, t0, 1
        end:
            csrr a1, minstret
            ebreak
        """))
        cpu.run()
        # between reads: csrr + lp.setupi + 10 x addi = 12
        assert cpu.reg(11) - cpu.reg(10) == 12

    def test_mhartid_zero(self):
        cpu = Cpu(assemble("csrr a0, mhartid\nebreak\n"))
        cpu.run()
        assert cpu.reg(10) == 0

    def test_mscratch_read_write(self):
        cpu = Cpu(assemble("""
            li t0, 0xABCD
            csrrw a0, mscratch, t0
            csrr a1, mscratch
            li t1, 0xF
            csrrc a2, mscratch, t1
            csrr a3, mscratch
            li t2, 0x30
            csrrs a4, mscratch, t2
            csrr a5, mscratch
            ebreak
        """))
        cpu.run()
        assert cpu.reg(10) == 0          # old mscratch
        assert cpu.reg(11) == 0xABCD
        assert cpu.reg(13) == 0xABC0     # cleared low nibble
        assert cpu.reg(15) == 0xABF0     # set bits 4-5

    def test_counter_writes_ignored(self):
        cpu = Cpu(assemble("""
            li t0, 999
            csrrw a0, mcycle, t0
            csrr a1, mcycle
            ebreak
        """))
        cpu.run()
        assert cpu.reg(11) < 100  # still the real cycle count

    def test_self_measured_kernel(self):
        """A program measuring its own hot loop via mcycle — the idiom a
        deployed RRM firmware would use for per-slot budgeting."""
        cpu = Cpu(assemble("""
            li a2, 0x1000
            csrr a0, mcycle
            lp.setupi 0, 50, end
            p.lw t0, 4(a2!)
            pv.sdotsp.h a3, t0, t0
        end:
            csrr a1, mcycle
            sub a0, a1, a0
            ebreak
        """))
        cpu.run()
        # csrr(1) + lp.setupi(1) + 50 x (lw(2: feeds sdot) + sdot(1))
        assert cpu.reg(10) == 152
