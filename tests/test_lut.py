"""Tests for PLA table generation and evaluation (Alg. 2 / Fig. 2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fixedpoint import (Q3_12, evaluate_error, make_table, pla_apply,
                              pla_apply_float)
from repro.fixedpoint.lut import FUNCTIONS


@pytest.fixture(scope="module", params=["tanh", "sig"])
def func(request):
    return request.param


@pytest.fixture(scope="module", params=["endpoint", "lsq", "minimax"])
def fit(request):
    return request.param


class TestTableConstruction:
    def test_point_design_geometry(self):
        table = make_table("tanh", 32, 9)
        assert table.interval_width == pytest.approx(0.125)
        assert table.range_limit == pytest.approx(4.0)
        assert len(table.slopes) == 32
        assert len(table.offsets) == 32
        assert table.storage_bits == 32 * 32

    def test_validation(self):
        with pytest.raises(ValueError):
            make_table("cosh", 32, 9)
        with pytest.raises(ValueError):
            make_table("tanh", 0, 9)
        with pytest.raises(ValueError):
            make_table("tanh", 32, -1)
        with pytest.raises(ValueError):
            make_table("tanh", 32, 9, fit="spline")

    def test_slopes_nonnegative_and_decreasing_tail(self, func, fit):
        # both tanh and sig are increasing and concave for x > ~1
        table = make_table(func, 32, 9, fit=fit)
        assert np.all(table.slopes >= 0)
        tail = table.slopes[8:]
        assert np.all(np.diff(tail) <= 0)


class TestPlaSemantics:
    def test_zero_maps_near_function_value(self, func):
        table = make_table(func, 32, 9)
        out = Q3_12.to_float(pla_apply(table, 0))
        assert out == pytest.approx(FUNCTIONS[func](0.0), abs=2e-3)

    def test_convergence_region(self):
        tanh = make_table("tanh", 32, 9)
        sig = make_table("sig", 32, 9)
        one = Q3_12.from_float(1.0)
        big = Q3_12.from_float(6.0)
        assert pla_apply(tanh, big) == one
        assert pla_apply(tanh, -big) == -one
        assert pla_apply(sig, big) == one
        assert pla_apply(sig, -big) == 0

    def test_tanh_odd_symmetry(self):
        table = make_table("tanh", 32, 9)
        xs = np.arange(-32768, 32768, 97)
        assert np.array_equal(pla_apply(table, xs),
                              -pla_apply(table, -xs))

    def test_sig_complement_symmetry(self):
        table = make_table("sig", 32, 9)
        one = Q3_12.from_float(1.0)
        xs = np.arange(-32000, 32000, 131)
        lhs = pla_apply(table, xs)
        rhs = one - pla_apply(table, -xs)
        assert np.array_equal(lhs, rhs)

    def test_monotone_within_one_lsb(self, func, fit):
        # quantizing the (m, q) LUT entries can dip the piecewise-linear
        # output by one LSB at interval boundaries; never more
        table = make_table(func, 32, 9, fit=fit)
        xs = np.arange(-40000, 40000, 13)
        ys = pla_apply(table, xs)
        assert np.all(np.diff(ys) >= -1)

    def test_scalar_equals_vector(self, func):
        table = make_table(func, 32, 9)
        xs = np.arange(-33000, 33000, 517)
        vec = pla_apply(table, xs)
        for x, y in zip(xs, vec):
            assert pla_apply(table, int(x)) == y

    @given(st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1))
    @settings(max_examples=200)
    def test_any_int32_input_is_safe(self, raw):
        table = make_table("tanh", 32, 9)
        out = pla_apply(table, raw)
        assert -32768 <= out <= 32767


class TestErrorEvaluation:
    def test_point_design_accuracy(self, fit):
        table = make_table("tanh", 32, 9, fit=fit)
        err = evaluate_error(table)
        # every fit beats 2e-3 max error and 2e-7 MSE at the paper's point
        assert err["max_err"] < 2e-3
        assert err["mse"] < 2e-7
        assert err["rmse"] == pytest.approx(np.sqrt(err["mse"]))

    def test_mse_bounded_by_maxerr_squared(self, func, fit):
        table = make_table(func, 16, 10, fit=fit)
        err = evaluate_error(table)
        assert err["mse"] <= err["max_err"] ** 2 + 1e-12

    def test_more_intervals_reduce_error(self, func):
        coarse = evaluate_error(make_table(func, 8, 11))
        fine = evaluate_error(make_table(func, 64, 8))
        assert fine["mse"] < coarse["mse"]

    def test_float_wrapper(self):
        table = make_table("tanh", 32, 9)
        out = pla_apply_float(table, 0.5)
        assert out == pytest.approx(np.tanh(0.5), abs=2e-3)
