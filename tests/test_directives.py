"""Assembler data directives (.data/.half/.word/.byte/.space/.align, la)."""

import pytest

from repro.core import Cpu, Memory
from repro.isa import AsmError, assemble


def run(src, memory=None):
    program = assemble(src)
    mem = memory if memory is not None else Memory(1 << 17)
    program.load_data(mem)
    cpu = Cpu(program, mem)
    cpu.run()
    return cpu, mem, program


class TestDataDirectives:
    def test_halfwords_little_endian(self):
        _, mem, prog = run("""
        .data
        vals: .half 1, -2, 0x30
        .text
            ebreak
        """)
        base = prog.data_labels["vals"]
        assert mem.load_half(base) == 1
        assert mem.load_half(base + 2) == -2
        assert mem.load_half(base + 4) == 0x30

    def test_words_and_bytes(self):
        _, mem, prog = run("""
        .data
        w: .word 123456, -7
        b: .byte 0xFF, 1
        .text
            ebreak
        """)
        assert mem.load_word(prog.data_labels["w"], signed=True) == 123456
        assert mem.load_word(prog.data_labels["w"] + 4, signed=True) == -7
        assert mem.load_byte(prog.data_labels["b"], signed=False) == 0xFF

    def test_space_zeroed_and_align(self):
        _, mem, prog = run("""
        .data
        a: .byte 7
           .align 4
        c: .word 5
        buf: .space 8
        .text
            ebreak
        """)
        assert prog.data_labels["c"] % 4 == 0
        assert mem.load_word(prog.data_labels["buf"]) == 0

    def test_la_loads_data_address(self):
        cpu, mem, prog = run("""
        .data
        coeffs: .half 111, 222
        .text
            la a0, coeffs
            lh a1, 0(a0)
            lh a2, 2(a0)
            ebreak
        """)
        assert cpu.reg(10) == prog.data_labels["coeffs"]
        assert cpu.reg_s(11) == 111
        assert cpu.reg_s(12) == 222

    def test_la_code_label(self):
        cpu, _, _ = run("""
            la a0, target
            ebreak
        target:
            ebreak
        """)
        assert cpu.reg(10) == 12  # la expands to 2 instructions

    def test_end_to_end_dot_product(self):
        cpu, _, _ = run("""
        .data
        a: .half 1, 2, 3, 4
        b: .half 5, 6, 7, 8
        .text
            la a0, a
            la a1, b
            li a2, 0
            lp.setupi 0, 2, end
            p.lw t0, 4(a0!)
            p.lw t1, 4(a1!)
            pv.sdotsp.h a2, t0, t1
        end:
            ebreak
        """)
        assert cpu.reg_s(12) == 1 * 5 + 2 * 6 + 3 * 7 + 4 * 8

    def test_custom_data_base(self):
        prog = assemble(".data\nx: .word 1\n.text\nebreak\n",
                        data_base=0x4000)
        assert prog.data_labels["x"] == 0x4000


class TestDirectiveErrors:
    def test_instruction_in_data_section(self):
        with pytest.raises(AsmError):
            assemble(".data\naddi a0, a0, 1\n")

    def test_directive_in_text_section(self):
        with pytest.raises(AsmError):
            assemble(".half 1\n")

    def test_unknown_directive(self):
        with pytest.raises(AsmError):
            assemble(".data\n.float 1.5\n")

    def test_negative_space(self):
        with pytest.raises(AsmError):
            assemble(".data\n.space -1\n")

    def test_undefined_la_symbol(self):
        with pytest.raises(AsmError):
            assemble("la a0, nowhere\nebreak\n")

    def test_duplicate_across_sections(self):
        with pytest.raises(AsmError):
            assemble("x:\nebreak\n.data\nx: .word 1\n")

    def test_section_takes_no_operands(self):
        with pytest.raises(AsmError):
            assemble(".data now\n")
