"""Encode/decode round-trip tests for every instruction format."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import EncodingError, Instr, SPECS, decode, encode
from repro.isa.instructions import Fmt

regs = st.integers(min_value=0, max_value=31)
imm12 = st.integers(min_value=-2048, max_value=2047)
shamt = st.integers(min_value=0, max_value=31)


def _spec_names(fmt):
    return sorted(s.mnemonic for s in SPECS.values() if s.fmt == fmt)


class TestRoundTrips:
    @given(st.sampled_from(_spec_names(Fmt.R)), regs, regs, regs)
    def test_r_type(self, name, rd, rs1, rs2):
        instr = Instr(name, rd=rd, rs1=rs1, rs2=rs2)
        out = decode(encode(instr))
        assert (out.mnemonic, out.rd, out.rs1, out.rs2) == \
            (name, rd, rs1, rs2)

    @given(st.sampled_from(_spec_names(Fmt.R2)), regs, regs)
    def test_r2_type(self, name, rd, rs1):
        out = decode(encode(Instr(name, rd=rd, rs1=rs1)))
        assert (out.mnemonic, out.rd, out.rs1) == (name, rd, rs1)

    @given(st.sampled_from(_spec_names(Fmt.I) + _spec_names(Fmt.JALR)
                           + _spec_names(Fmt.LOAD)), regs, regs, imm12)
    def test_i_type(self, name, rd, rs1, imm):
        out = decode(encode(Instr(name, rd=rd, rs1=rs1, imm=imm)))
        assert (out.mnemonic, out.rd, out.rs1, out.imm) == \
            (name, rd, rs1, imm)

    @given(st.sampled_from(_spec_names(Fmt.SHIFT)), regs, regs, shamt)
    def test_shift_type(self, name, rd, rs1, imm):
        out = decode(encode(Instr(name, rd=rd, rs1=rs1, imm=imm)))
        assert (out.mnemonic, out.rd, out.rs1, out.imm) == \
            (name, rd, rs1, imm)

    @given(st.sampled_from(_spec_names(Fmt.STORE)), regs, regs, imm12)
    def test_s_type(self, name, rs1, rs2, imm):
        out = decode(encode(Instr(name, rs1=rs1, rs2=rs2, imm=imm)))
        assert (out.mnemonic, out.rs1, out.rs2, out.imm) == \
            (name, rs1, rs2, imm)

    @given(st.sampled_from(_spec_names(Fmt.BRANCH)), regs, regs,
           st.integers(min_value=-2048, max_value=2047))
    def test_b_type(self, name, rs1, rs2, halfoff):
        imm = halfoff * 2
        out = decode(encode(Instr(name, rs1=rs1, rs2=rs2, imm=imm)))
        assert (out.mnemonic, out.rs1, out.rs2, out.imm) == \
            (name, rs1, rs2, imm)

    @given(regs, st.integers(min_value=0, max_value=(1 << 20) - 1),
           st.sampled_from(["lui", "auipc"]))
    def test_u_type(self, rd, imm, name):
        out = decode(encode(Instr(name, rd=rd, imm=imm)))
        assert (out.mnemonic, out.rd, out.imm) == (name, rd, imm)

    @given(regs, st.integers(min_value=-(1 << 19), max_value=(1 << 19) - 1))
    def test_jal(self, rd, halfoff):
        imm = halfoff * 2
        out = decode(encode(Instr("jal", rd=rd, imm=imm)))
        assert (out.mnemonic, out.rd, out.imm) == ("jal", rd, imm)

    @given(st.integers(0, 1), regs,
           st.integers(min_value=0, max_value=4095))
    def test_lp_setup(self, loop, rs1, off):
        out = decode(encode(Instr("lp.setup", loop=loop, rs1=rs1,
                                  imm2=off)))
        assert (out.mnemonic, out.loop, out.rs1, out.imm2) == \
            ("lp.setup", loop, rs1, off)

    @given(st.integers(0, 1), st.integers(min_value=0, max_value=511),
           st.integers(min_value=0, max_value=4095))
    def test_lp_setupi(self, loop, count, off):
        out = decode(encode(Instr("lp.setupi", loop=loop, imm=count,
                                  imm2=off)))
        assert (out.mnemonic, out.loop, out.imm, out.imm2) == \
            ("lp.setupi", loop, count, off)

    def test_none_formats(self):
        for name in ("fence", "ecall", "ebreak"):
            assert decode(encode(Instr(name))).mnemonic == name


class TestErrors:
    def test_imm_out_of_range(self):
        with pytest.raises(EncodingError):
            encode(Instr("addi", rd=1, rs1=1, imm=5000))

    def test_odd_branch_offset(self):
        with pytest.raises(EncodingError):
            encode(Instr("beq", rs1=0, rs2=0, imm=3))

    def test_unknown_opcode(self):
        with pytest.raises(EncodingError):
            decode(0x0000007F)

    def test_word_out_of_range(self):
        with pytest.raises(EncodingError):
            decode(1 << 32)

    def test_loop_count_too_large(self):
        with pytest.raises(EncodingError):
            encode(Instr("lp.setupi", loop=0, imm=512, imm2=8))


class TestDistinctness:
    def test_all_specs_encode_uniquely(self):
        seen = {}
        for name in SPECS:
            fmt = SPECS[name].fmt
            instr = Instr(name)
            if fmt == Fmt.BRANCH or fmt == Fmt.JAL:
                instr.imm = 0
            word = encode(instr)
            assert word not in seen, f"{name} collides with {seen.get(word)}"
            seen[word] = name
            assert decode(word).mnemonic == name
