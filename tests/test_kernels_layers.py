"""LSTM-step, conv and copy kernels vs. golden models at every level."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Cpu, Memory
from repro.fixedpoint import SIG_TABLE, TANH_TABLE
from repro.isa import assemble
from repro.kernels import (AsmBuilder, ConvJob, LEVELS, LstmJob, gen_conv,
                           gen_copy, gen_lstm_step, padded_row)
from repro.nn import conv2d_fixed, lstm_step_fixed

LEVEL_KEYS = ("a", "b", "c", "d", "e")
LUTS = {"tanh_m": 0x0800, "tanh_q": 0x0900, "sig_m": 0x0A00, "sig_q": 0x0B00}


def _memory(size=1 << 18):
    mem = Memory(size)
    mem.store_halfwords(LUTS["tanh_m"], TANH_TABLE.slopes)
    mem.store_halfwords(LUTS["tanh_q"], TANH_TABLE.offsets)
    mem.store_halfwords(LUTS["sig_m"], SIG_TABLE.slopes)
    mem.store_halfwords(LUTS["sig_q"], SIG_TABLE.offsets)
    return mem


def run_lstm(level_key, w_cat, bias, x, h, c):
    level = LEVELS[level_key]
    n = w_cat.shape[0] // 4
    m = w_cat.shape[1] - n
    row_hw = padded_row(m + n, level_key)
    xh, z, c_addr, w_addr, b_addr = 0x2000, 0x3000, 0x3800, 0x8000, 0x4000
    mem = _memory()
    padded = np.zeros((4 * n, row_hw), dtype=np.int64)
    padded[:, :m + n] = w_cat
    mem.store_halfwords(w_addr, padded)
    mem.store_halfwords(b_addr, bias)
    mem.store_halfwords(xh, x)
    mem.store_halfwords(xh + 2 * m, h)
    mem.store_halfwords(c_addr, c)
    builder = AsmBuilder()
    gen_lstm_step(builder, level, LstmJob(
        m=m, n=n, w_addr=w_addr, b_addr=b_addr, xh_addr=xh, z_addr=z,
        c_addr=c_addr, row_halfwords=row_hw, acc_addr=0x0FF0,
        lut_tanh_m=LUTS["tanh_m"], lut_tanh_q=LUTS["tanh_q"],
        lut_sig_m=LUTS["sig_m"], lut_sig_q=LUTS["sig_q"]))
    builder.emit("ebreak")
    cpu = Cpu(assemble(builder.text()), mem, extensions=level.extensions)
    iss = cpu.run()
    return (mem.load_halfwords(xh + 2 * m, n),
            mem.load_halfwords(c_addr, n), iss, builder.trace)


class TestLstmStep:
    @pytest.mark.parametrize("level", LEVEL_KEYS)
    @given(dims=st.tuples(st.sampled_from([2, 4, 6, 8]),
                          st.sampled_from([2, 4, 6, 10])),
           seed=st.integers(0, 10 ** 6))
    @settings(max_examples=6, deadline=None)
    def test_matches_golden(self, level, dims, seed):
        m, n = dims
        rng = np.random.default_rng(seed)
        w = rng.integers(-1500, 1500, (4 * n, m + n))
        bias = rng.integers(-1000, 1000, 4 * n)
        x = rng.integers(-3000, 3000, m)
        h = rng.integers(-3000, 3000, n)
        c = rng.integers(-3000, 3000, n)
        h_out, c_out, _, _ = run_lstm(level, w, bias, x, h, c)
        h_ref, c_ref = lstm_step_fixed(w, bias, x, h, c)
        assert np.array_equal(c_out, c_ref)
        assert np.array_equal(h_out, h_ref)

    @pytest.mark.parametrize("level", LEVEL_KEYS)
    def test_model_equals_iss(self, level):
        rng = np.random.default_rng(11)
        m, n = 6, 8
        w = rng.integers(-1500, 1500, (4 * n, m + n))
        bias = rng.integers(-1000, 1000, 4 * n)
        x = rng.integers(-3000, 3000, m)
        h = rng.integers(-3000, 3000, n)
        c = rng.integers(-3000, 3000, n)
        _, _, iss, model = run_lstm(level, w, bias, x, h, c)
        for trace in (iss, model):
            trace.instrs.pop("ebreak", None)
            trace.cycles.pop("ebreak", None)
        assert iss == model

    def test_multi_step_recurrence(self):
        rng = np.random.default_rng(5)
        m, n = 4, 6
        w = rng.integers(-1200, 1200, (4 * n, m + n))
        bias = rng.integers(-800, 800, 4 * n)
        h = np.zeros(n, dtype=np.int64)
        c = np.zeros(n, dtype=np.int64)
        h_ref = h.copy()
        c_ref = c.copy()
        for step in range(4):
            x = rng.integers(-3000, 3000, m)
            h, c, _, _ = run_lstm("d", w, bias, x, h, c)
            h_ref, c_ref = lstm_step_fixed(w, bias, x, h_ref, c_ref)
            assert np.array_equal(h, h_ref), f"diverged at step {step}"


def run_conv(level_key, w, x, bias):
    level = LEVELS[level_key]
    cout, cin, k, _ = w.shape
    _, h, wid = x.shape
    patch_hw = padded_row(cin * k * k, level_key)
    x_addr, w_addr, b_addr, out_addr, patch = (0x2000, 0x8000, 0x4000,
                                               0x5000, 0x1800)
    mem = _memory()
    mem.store_halfwords(x_addr, x)
    if level_key == "a":
        mem.store_halfwords(w_addr, w)
    else:
        rows = np.zeros((cout, patch_hw), dtype=np.int64)
        rows[:, :cin * k * k] = w.reshape(cout, -1)
        mem.store_halfwords(w_addr, rows)
    mem.store_halfwords(b_addr, bias)
    builder = AsmBuilder()
    gen_conv(builder, level, ConvJob(
        cin=cin, cout=cout, h=h, w=wid, k=k, w_addr=w_addr, x_addr=x_addr,
        b_addr=b_addr, out_addr=out_addr, patch_addr=patch,
        patch_row_halfwords=patch_hw, acc_addr=0x0FF0))
    builder.emit("ebreak")
    cpu = Cpu(assemble(builder.text()), mem, extensions=level.extensions)
    iss = cpu.run()
    h_out, w_out = h - k + 1, wid - k + 1
    out = mem.load_halfwords(out_addr, cout * h_out * w_out)
    return out.reshape(cout, h_out, w_out), iss, builder.trace


class TestConv:
    @pytest.mark.parametrize("level", LEVEL_KEYS)
    @given(seed=st.integers(0, 10 ** 6),
           geom=st.tuples(st.sampled_from([1, 2, 3]),
                          st.sampled_from([1, 2, 4, 5]),
                          st.sampled_from([(5, 5, 3), (6, 4, 3),
                                           (4, 4, 2)])))
    @settings(max_examples=5, deadline=None)
    def test_matches_golden(self, level, seed, geom):
        cin, cout, (h, wid, k) = geom
        rng = np.random.default_rng(seed)
        w = rng.integers(-1500, 1500, (cout, cin, k, k))
        x = rng.integers(-2500, 2500, (cin, h, wid))
        bias = rng.integers(-1000, 1000, cout)
        out, _, _ = run_conv(level, w, x, bias)
        assert np.array_equal(out, conv2d_fixed(w, x, bias))

    @pytest.mark.parametrize("level", LEVEL_KEYS)
    def test_model_equals_iss(self, level):
        rng = np.random.default_rng(9)
        w = rng.integers(-1200, 1200, (4, 2, 3, 3))
        x = rng.integers(-2000, 2000, (2, 6, 6))
        bias = rng.integers(-500, 500, 4)
        _, iss, model = run_conv(level, w, x, bias)
        for trace in (iss, model):
            trace.instrs.pop("ebreak", None)
            trace.cycles.pop("ebreak", None)
        assert iss == model

    def test_1x1_kernel(self):
        rng = np.random.default_rng(2)
        w = rng.integers(-1000, 1000, (3, 2, 1, 1))
        x = rng.integers(-2000, 2000, (2, 4, 4))
        bias = rng.integers(-500, 500, 3)
        out, _, _ = run_conv("d", w, x, bias)
        assert np.array_equal(out, conv2d_fixed(w, x, bias))


class TestCopy:
    @pytest.mark.parametrize("level", LEVEL_KEYS)
    def test_copies_exactly(self, level):
        mem = _memory()
        data = np.arange(-8, 8, dtype=np.int64) * 1000
        mem.store_halfwords(0x2000, data)
        builder = AsmBuilder()
        gen_copy(builder, LEVELS[level], 0x2000, 0x3000, data.size)
        builder.emit("ebreak")
        cpu = Cpu(assemble(builder.text()), mem,
                  extensions=LEVELS[level].extensions)
        cpu.run()
        assert np.array_equal(mem.load_halfwords(0x3000, data.size), data)

    def test_validation(self):
        builder = AsmBuilder()
        with pytest.raises(ValueError):
            gen_copy(builder, LEVELS["d"], 0x2000, 0x3000, 3)
        with pytest.raises(ValueError):
            gen_copy(builder, LEVELS["d"], 0x2002, 0x3000, 4)
