"""ISA reference generator and its committed artifact."""

import os

from repro.isa import SPECS
from repro.isa.reference import format_reference, reference_rows

_DOCS = os.path.join(os.path.dirname(__file__), "..", "docs", "ISA.md")


class TestReference:
    def test_covers_every_mnemonic(self):
        mnemonics = {row[1] for row in reference_rows()}
        assert mnemonics == set(SPECS)

    def test_extensions_grouped(self):
        text = format_reference()
        assert "Xrnn - the paper's extensions" in text
        assert "Xpulp subset" in text
        assert "pl.sdotsp.h.0" in text

    def test_timing_notes_present(self):
        text = format_reference()
        assert "2 when taken" in text
        assert "SPR re-read" in text
        assert "loop back edge is free" in text

    def test_committed_doc_in_sync(self):
        """docs/ISA.md must be regenerated whenever the ISA changes."""
        with open(_DOCS) as handle:
            committed = handle.read().rstrip("\n")
        assert committed == format_reference().rstrip("\n"), \
            "regenerate with: python -m repro.isa.reference > docs/ISA.md"
