"""Breadth tests: disassembly of every mnemonic, activation chunking
boundaries, paper-scale spot checks, and odds and ends."""

import numpy as np
import pytest

from repro.core import Cpu, Memory, MemoryError32
from repro.core.tracer import Trace
from repro.isa import SPECS, assemble, decode, encode, format_instr
from repro.isa.instructions import Fmt, Instr


class TestDisassemblerCoverage:
    @pytest.mark.parametrize("mnemonic", sorted(SPECS))
    def test_every_mnemonic_formats(self, mnemonic):
        spec = SPECS[mnemonic]
        instr = Instr(mnemonic, rd=1, rs1=2, rs2=3)
        if spec.fmt in (Fmt.BRANCH, Fmt.JAL):
            instr.imm = 8
        elif spec.fmt in (Fmt.HWLOOP, Fmt.HWLOOPI):
            instr.imm2 = 8
        text = format_instr(instr)
        assert text.startswith(mnemonic)

    @pytest.mark.parametrize("mnemonic", sorted(SPECS))
    def test_every_mnemonic_encodes_and_decodes(self, mnemonic):
        spec = SPECS[mnemonic]
        instr = Instr(mnemonic, rd=1, rs1=2, rs2=3)
        if spec.fmt in (Fmt.BRANCH, Fmt.JAL):
            instr.imm = 8
        elif spec.fmt in (Fmt.HWLOOP, Fmt.HWLOOPI):
            instr.imm2 = 8
        assert decode(encode(instr)).mnemonic == mnemonic


class TestActivationChunkBoundaries:
    @pytest.mark.parametrize("count", (510, 511, 512, 1022, 1023))
    def test_relu_chunking_exact(self, count):
        from repro.kernels import (ActivationJob, AsmBuilder, LEVELS,
                                   gen_activation)
        rng = np.random.default_rng(count)
        values = rng.integers(-32768, 32768, count)
        mem = Memory(1 << 16)
        mem.store_halfwords(0x2000, values)
        builder = AsmBuilder()
        gen_activation(builder, LEVELS["d"], ActivationJob(
            func="relu", addr=0x2000, count=count))
        builder.emit("ebreak")
        cpu = Cpu(assemble(builder.text()), mem)
        iss = cpu.run()
        out = mem.load_halfwords(0x2000, count)
        assert np.array_equal(out, np.maximum(values, 0))
        assert iss == builder.trace


class TestMemoryFaults:
    def test_wild_load_reports_pc(self):
        cpu = Cpu(assemble("""
            li a0, 0x7fffff00
            lw a1, 0(a0)
            ebreak
        """), Memory(1 << 12))
        with pytest.raises(MemoryError32, match="pc=0x"):
            cpu.run()

    def test_wild_vliw_prefetch_reports(self):
        cpu = Cpu(assemble("""
            li a0, 0x7fffff00
            pl.sdotsp.h.0 x0, a0, x0
            ebreak
        """), Memory(1 << 12))
        with pytest.raises(MemoryError32):
            cpu.run()


class TestTraceUtilities:
    def test_eq_ignores_zero_entries(self):
        a = Trace()
        a.add("addi", 3, 3)
        a.add("lw", 0, 0)
        b = Trace()
        b.add("addi", 3, 3)
        assert a == b

    def test_eq_other_type(self):
        assert Trace().__eq__(42) is NotImplemented

    def test_table_renders_units(self):
        t = Trace()
        t.add("addi", 1500, 1500)
        text = t.table(top_n=1, unit=1000)
        assert "1.5" in text


@pytest.mark.slow
class TestPaperScaleSpotCheck:
    """One full-scale network through the ISS: the static model must match
    even at paper dimensions (the reduced-scale equality is not an
    artifact of small shapes)."""

    def test_ye2018_full_scale_level_e(self):
        from repro.kernels import NetworkProgram
        from repro.nn import init_params, quantize_params
        from repro.rrm.networks import FULL_SUITE
        from repro.rrm.suite import network_trace
        net = next(n for n in FULL_SUITE if n.name == "ye2018")
        params = quantize_params(init_params(net,
                                             np.random.default_rng(0)))
        program = NetworkProgram(net, params, "e")
        rng = np.random.default_rng(1)
        x = np.asarray(rng.uniform(-1, 1, net.input_size) * 4096,
                       dtype=np.int64)
        program.run_and_check([x])
        iss = program.trace
        model = network_trace(net, "e")
        iss.instrs.pop("ebreak", None)
        iss.cycles.pop("ebreak", None)
        model.instrs.pop("ebreak", None)
        model.cycles.pop("ebreak", None)
        assert iss == model
