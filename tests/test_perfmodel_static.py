"""Closed-form latency prediction vs. the instruction-set simulator."""

import numpy as np
import pytest

from repro.core import Cpu, Memory
from repro.isa import assemble
from repro.kernels.runner import NetworkProgram
from repro.nn.network import init_params, quantize_params
from repro.perfmodel import (Unpredictable, predict_network_cycles,
                             predict_program_cycles)
from repro.rrm.networks import suite


def _iss(source):
    program = assemble(source)
    cpu = Cpu(program, Memory())
    cpu.run()
    return cpu.cycles, cpu.instret


def _predict(source):
    pred = predict_program_cycles(assemble(source))
    return pred.cycles, pred.instret


class TestPrograms:
    def test_straight_line(self):
        src = """
            addi t0, x0, 7
            lw t1, 0(x0)
            addi t2, t1, 1
            ebreak
        """
        assert _predict(src) == _iss(src)

    def test_branch_closed_loop_collapses(self):
        src = """
            addi t0, x0, 0
            addi t1, x0, 4000
        top:
            addi t0, t0, 1
            bne t0, t1, top
            ebreak
        """
        assert _predict(src) == _iss(src)

    def test_bltu_counter_loop(self):
        src = """
            addi a0, x0, 0
            addi a1, x0, 1500
        top:
            addi a0, a0, 3
            bltu a0, a1, top
            ebreak
        """
        assert _predict(src) == _iss(src)

    def test_hardware_loop_collapses(self):
        src = """
            addi a1, x0, 0
            lp.setupi 0, 900, end
            lw t0, 0(a1)
            addi a1, a1, 4
        end:
            xor t1, t1, t0
            ebreak
        """
        assert _predict(src) == _iss(src)

    def test_nested_hw_loops(self):
        src = """
            addi a2, x0, 30
            lp.setup 1, a2, outer
            addi a1, x0, 0
            lp.setupi 0, 40, inner
            p.lw t0, 4(a1!)
            add t1, t1, t0
        inner:
            addi a3, a3, 1
        outer:
            ebreak
        """
        assert _predict(src) == _iss(src)

    def test_spr_dot_product_timing(self):
        src = """
            addi a1, x0, 0
            addi a2, x0, 256
            lp.setupi 0, 200, end
            pl.sdotsp.h.0 t1, a1, t2
        end:
            pl.sdotsp.h.1 t3, a2, t4
            ebreak
        """
        assert _predict(src) == _iss(src)

    def test_zero_count_register_loop_skips_body(self):
        src = """
            addi a2, x0, 0
            lp.setup 0, a2, end
            addi t0, t0, 1
        end:
            addi t1, t1, 1
            addi t2, x0, 5
            ebreak
        """
        assert _predict(src) == _iss(src)

    def test_data_dependent_branch_is_unpredictable(self):
        src = """
            lw t0, 0(x0)
            bne t0, x0, skip
            addi t1, x0, 1
        skip:
            ebreak
        """
        with pytest.raises(Unpredictable):
            predict_program_cycles(assemble(src))

    def test_infinite_loop_is_unpredictable(self):
        src = """
            addi t0, x0, 1
        top:
            addi t1, t1, 1
            bne t0, x0, top
            ebreak
        """
        with pytest.raises(Unpredictable):
            predict_program_cycles(assemble(src))


class TestNetworks:
    """The closed form must agree with the ISS over full inferences."""

    @pytest.mark.parametrize("net_index", [0, 3, 7])
    @pytest.mark.parametrize("level", list("abcdef"))
    def test_agrees_with_iss(self, net_index, level):
        network = suite(4)[net_index]
        params = quantize_params(
            init_params(network, np.random.default_rng(2020)))
        program = NetworkProgram(network, params, level)
        rng = np.random.default_rng(7)
        xs = [np.asarray(rng.uniform(-1, 1, network.input_size) * 4096,
                         dtype=np.int64)
              for _ in range(network.timesteps)]
        program.forward(xs)
        pred = predict_network_cycles(network, level)
        assert pred.cycles == program.cpu.cycles
        assert pred.instret == program.cpu.instret
