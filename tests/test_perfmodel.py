"""Analytical performance model: builder counts vs. closed-form marginals
and vs. the ISS on the scaled benchmark suite."""

import pytest

from repro.kernels import AsmBuilder, LEVELS, MatvecJob, gen_matvec, padded_row
from repro.perfmodel import matvec_marginal, network_trace, plan_for
from repro.rrm import SuiteRunner, suite
from repro.rrm.suite import LEVEL_KEYS


def _counts(level_key, n_in, n_out, max_tile=10):
    builder = AsmBuilder()
    job = MatvecJob(n_in=n_in, n_out=n_out, w_addr=0x1000, x_addr=0x4000,
                    b_addr=0x5000, out_addr=0x5800,
                    row_halfwords=padded_row(n_in, level_key),
                    acc_addr=0x0FF0, max_tile=max_tile)
    gen_matvec(builder, LEVELS[level_key], job)
    return builder.trace


class TestClosedFormMarginals:
    """Differencing the builder over n_in cancels all prologue costs; what
    remains must equal the written-down per-element algebra exactly."""

    @pytest.mark.parametrize("level", LEVEL_KEYS)
    def test_marginal_instructions_and_cycles(self, level):
        marg = matvec_marginal(level, tile=10)
        unit = marg["unit_elems"]
        if level == "a":
            n_out = 1
            tiles = 1
        else:
            n_out = 10
            tiles = 1
        small = _counts(level, 3 * unit, n_out)
        large = _counts(level, 7 * unit, n_out)
        d_units = (7 - 3)
        per_pass = n_out if level in ("a", "b") else tiles
        d_instr = large.total_instrs - small.total_instrs
        d_cycles = large.total_cycles - small.total_cycles
        assert d_instr == marg["instrs"] * d_units * per_pass
        assert d_cycles == marg["cycles"] * d_units * per_pass

    @pytest.mark.parametrize("level", LEVEL_KEYS)
    def test_macs_per_cycle_ordering(self, level):
        marg = matvec_marginal(level)
        density = marg["macs"] / marg["cycles"]
        expected_floor = {"a": 0.1, "b": 0.45, "c": 0.9, "d": 1.5,
                          "e": 1.7}[level]
        assert density >= expected_floor

    def test_unknown_level(self):
        with pytest.raises(ValueError):
            matvec_marginal("z")


class TestPlanCache:
    def test_plan_for_caches(self):
        net = suite(8)[3]
        assert plan_for(net, "c") is plan_for(net, "c")

    def test_network_trace_scales_with_timesteps(self):
        net = suite(8)[0]  # recurrent
        per_inf = network_trace(net, "d")
        per_step = plan_for(net, "d").trace
        assert per_inf.total_cycles == per_step.total_cycles * net.timesteps


@pytest.mark.slow
class TestModelVsIssOnSuite:
    """End-to-end: the static model equals the ISS execution histogram for
    every network of the (reduced-scale) suite at every level."""

    @pytest.mark.parametrize("level", LEVEL_KEYS)
    def test_suite_model_equals_iss(self, level):
        runner = SuiteRunner(scale=8, check=True)
        for network in runner.networks:
            iss = runner.run_network(network, level)
            model = network_trace(network, level)
            iss.instrs.pop("ebreak", None)
            iss.cycles.pop("ebreak", None)
            model.instrs.pop("ebreak", None)
            model.cycles.pop("ebreak", None)
            assert iss == model, f"{network.name} at level {level}"
