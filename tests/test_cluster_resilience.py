"""Cluster resilience end to end: real worker processes under hedges,
IPC faults, kills and hard stops — proving the exactly-once and
no-hang guarantees the invariant checker formalizes.

Process-spawning tests are expensive; each cluster here is built once
and made to answer several questions.
"""

import threading
import time

import numpy as np

from repro.cluster import ClusterConfig, ClusterMetrics, ServingCluster
from repro.resilience import (ChannelFaultPlan, HedgePolicy,
                              check_breaker_transitions,
                              check_router_invariants)
from repro.rrm.networks import suite
from repro.serve.engine import EngineConfig, ModelRegistry, RequestStatus

NETWORKS = suite(4)
SEED = 2020


def _stream(n, seed=7):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        network = NETWORKS[int(rng.integers(len(NETWORKS)))]
        x = np.asarray(rng.uniform(-1, 1, (network.timesteps,
                                           network.input_size)) * 4096,
                       dtype=np.int64)
        out.append((network, x))
    return out


def _golden(stream):
    registry = ModelRegistry(seed=SEED)
    outputs = []
    for network, x in stream:
        entry = registry.get(network, "e")
        entry.reference.reset()
        outputs.append(entry.reference.forward(x))
    return outputs


def _check_invariants(cluster):
    report = check_router_invariants(cluster.audit.events(),
                                     stop_t=cluster.stopped_at,
                                     dropped=cluster.audit.dropped)
    for payload in cluster.worker_finals().values():
        report = report.merge(check_breaker_transitions(
            payload.get("breaker_events", [])))
    return report


class TestStopSettlesEverything:
    def test_no_request_hangs_across_hard_stop(self):
        """Regression for the stop-hang class of bugs: every accepted
        request reaches a terminal status when the cluster stops while
        traffic is still in flight — nothing waits forever."""
        cluster = ServingCluster(
            NETWORKS,
            ClusterConfig(n_shards=1, replicas_per_shard=2,
                          engine=EngineConfig(seed=SEED)),
            metrics=ClusterMetrics())
        cluster.start()
        stream = _stream(40, seed=3)
        requests = [cluster.submit(net.name, x) for net, x in stream]
        # Stop immediately: most requests are still queued or on the
        # wire.  stop() must settle every one of them.
        cluster.stop()
        for request in requests:
            assert request.wait(timeout=5.0), \
                f"request {request.id} hung across stop()"
            assert request.status in (RequestStatus.DONE,
                                      RequestStatus.FAILED,
                                      RequestStatus.REJECTED_UNAVAILABLE,
                                      RequestStatus.REJECTED_CAPACITY)
        report = _check_invariants(cluster)
        assert report.ok, report.violations
        # Post-stop submissions settle immediately as unavailable
        # rather than queueing into the void.
        late = cluster.submit(stream[0][0].name, stream[0][1])
        assert late.wait(timeout=1.0)
        assert late.status == RequestStatus.REJECTED_UNAVAILABLE

    def test_stop_is_idempotent(self):
        cluster = ServingCluster(
            NETWORKS,
            ClusterConfig(n_shards=1, replicas_per_shard=1,
                          engine=EngineConfig(seed=SEED)))
        cluster.start()
        cluster.stop()
        cluster.stop()  # second stop must be a no-op, not a crash


class TestExactlyOnceUnderKills:
    def test_kill_redispatch_respawn_settles_exactly_once(self):
        """Property-style run: while a seeded client drives traffic, a
        replica is killed mid-run; kill → redispatch → respawn races
        must never settle a request twice or lose one.  The audit log
        is the proof."""
        cluster = ServingCluster(
            NETWORKS,
            ClusterConfig(n_shards=1, replicas_per_shard=2,
                          engine=EngineConfig(seed=SEED),
                          hedge=HedgePolicy()),
            metrics=ClusterMetrics())
        stream = _stream(60, seed=11)
        golden = _golden(stream)
        killed = []

        def chaos():
            time.sleep(0.10)
            killed.append(cluster.kill_replica(0))

        with cluster:
            killer = threading.Thread(target=chaos)
            killer.start()
            requests = []
            for network, x in stream:
                requests.append(cluster.submit(network.name, x,
                                               timeout_s=30.0))
                time.sleep(0.004)
            killer.join()
            for request in requests:
                assert request.wait(timeout=60.0)
        assert killed and killed[0] is not None
        report = _check_invariants(cluster)
        assert report.ok, report.violations
        assert report.stats["never_settled"] == 0
        assert report.stats["multi_settled"] == 0
        # Survivor outputs are bit-exact; the kill cost at most the
        # redispatch-exhausted stragglers, never correctness.
        for request, want in zip(requests, golden):
            if request.ok:
                assert np.array_equal(request.output, want)
        done = sum(1 for r in requests if r.ok)
        assert done >= len(requests) * 0.8
        totals = cluster.metrics.to_dict()["total"]
        assert totals["proc_deaths"] >= 1
        assert totals["replica_starts"] >= 3  # 2 initial + respawn


class TestIpcFaultsAbsorbed:
    def test_corrupt_messages_are_naked_and_retried_bit_exact(self):
        """With an aggressive corrupt-heavy fault plan on every pipe,
        CRC framing + NAK redispatch must keep completions bit-exact
        and the run exactly-once; corruption shows up in the fault log
        and the NAK counters, never in outputs."""
        plan = ChannelFaultPlan(corrupt_p=0.25, duplicate_p=0.1)
        cluster = ServingCluster(
            NETWORKS,
            ClusterConfig(n_shards=1, replicas_per_shard=2,
                          engine=EngineConfig(seed=SEED),
                          hedge=HedgePolicy(), channel_faults=plan),
            metrics=ClusterMetrics())
        stream = _stream(50, seed=23)
        golden = _golden(stream)
        with cluster:
            requests = [cluster.submit(net.name, x, timeout_s=30.0)
                        for net, x in stream]
            for request in requests:
                assert request.wait(timeout=60.0)
        for request, want in zip(requests, golden):
            if request.ok:
                assert np.array_equal(request.output, want)
        done = sum(1 for r in requests if r.ok)
        assert done >= len(requests) * 0.8
        assert len(cluster.channel_log) > 0
        assert cluster.channel_log.counts().get("corrupt", 0) > 0
        totals = cluster.metrics.to_dict()["total"]
        assert totals["naks"] > 0
        report = _check_invariants(cluster)
        assert report.ok, report.violations

    def test_same_seed_same_channel_decisions(self):
        """The per-channel fault decisions are a pure function of
        (seed, channel, rid): two clusters with the same seed and the
        same request population log faults for the same victims."""
        # No drop_p: with a single replica a dropped request can only
        # be reaped at its deadline, which would stall the test.
        plan = ChannelFaultPlan(duplicate_p=0.1, corrupt_p=0.1,
                                delay_p=0.1)
        digests = []
        for _ in range(2):
            cluster = ServingCluster(
                NETWORKS,
                ClusterConfig(n_shards=1, replicas_per_shard=1,
                              engine=EngineConfig(seed=SEED),
                              hedge=HedgePolicy(), channel_faults=plan),
                metrics=ClusterMetrics())
            with cluster:
                requests = [cluster.submit(net.name, x, timeout_s=30.0)
                            for net, x in _stream(40, seed=5)]
                for request in requests:
                    assert request.wait(timeout=60.0)
            # tx decisions only: one replica means rids reach the tx
            # channel in submit order, and dropped requests are then
            # hedged/reaped on timing, so restrict to the deterministic
            # direction.
            tx_events = [e for e in cluster.channel_log.canonical()
                         if e["dir"] == "tx"]
            digests.append([(e["channel"], e["rid"], e["kind"])
                            for e in tx_events])
        assert digests[0] == digests[1]
