"""Fuzzing the timing model: hypothesis-generated straight-line and looped
programs must produce identical histograms from the AsmBuilder static
analysis and the ISS, and identical architecture from the binary twin."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import Cpu, Memory
from repro.isa import assemble
from repro.isa.binary import roundtrip_program
from repro.kernels import AsmBuilder

# Register pool for generated code (avoid x0 semantics special cases in
# generation; the dedicated unit tests cover x0).
REGS = ["t0", "t1", "t2", "a0", "a1", "a2", "a3", "s0", "s1", "s2"]

alu_ops = st.sampled_from(["add", "sub", "and", "or", "xor", "sll", "srl",
                           "sra", "mul", "slt", "sltu", "p.mac",
                           "pv.add.h", "pv.sub.h", "pv.sdotsp.h"])
imm_ops = st.sampled_from(["addi", "andi", "ori", "xori", "slti"])
shift_ops = st.sampled_from(["slli", "srli", "srai"])
unary_ops = st.sampled_from(["p.abs", "p.exths", "pl.tanh", "pl.sig"])
regs = st.sampled_from(REGS)


@st.composite
def instruction(draw):
    kind = draw(st.integers(0, 5))
    rd, rs1, rs2 = draw(regs), draw(regs), draw(regs)
    if kind == 0:
        return f"{draw(alu_ops)} {rd}, {rs1}, {rs2}"
    if kind == 1:
        return f"{draw(imm_ops)} {rd}, {rs1}, " \
               f"{draw(st.integers(-2048, 2047))}"
    if kind == 2:
        return f"{draw(shift_ops)} {rd}, {rs1}, {draw(st.integers(0, 31))}"
    if kind == 3:
        return f"{draw(unary_ops)} {rd}, {rs1}"
    if kind == 4:
        # loads from a safe window; offset word-aligned
        off = draw(st.integers(0, 63)) * 4
        return f"lw {rd}, {off}(s10)"
    off = draw(st.integers(0, 63)) * 4
    return f"sw {rs2}, {off}(s10)"


@st.composite
def program_case(draw):
    body = draw(st.lists(instruction(), min_size=1, max_size=25))
    loop_count = draw(st.integers(1, 9))
    looped = draw(st.booleans())
    return body, loop_count, looped


class TestFuzzModelVsIss:
    @given(case=program_case())
    @settings(max_examples=120, deadline=None)
    def test_builder_equals_iss(self, case):
        body, loop_count, looped = case
        builder = AsmBuilder()
        builder.li("s10", 0x8000)  # load/store window base
        if looped:
            # a load may not sit at the hardware-loop end
            loop_body = body + ["addi s3, s3, 1"]
            with builder.hwloop(0, loop_count):
                for line in loop_body:
                    builder.emit(line)
        else:
            for line in body:
                builder.emit(line)
        builder.emit("ebreak")

        program = assemble(builder.text())
        mem = Memory(1 << 17)
        rng = np.random.default_rng(0)
        mem.store_words_array(0x8000, rng.integers(0, 2 ** 32, 64,
                                                   dtype=np.uint64))
        cpu = Cpu(program, mem)
        iss = cpu.run()
        assert iss == builder.trace

    @given(case=program_case())
    @settings(max_examples=60, deadline=None)
    def test_binary_twin_equivalent(self, case):
        body, loop_count, looped = case
        builder = AsmBuilder()
        builder.li("s10", 0x8000)
        if looped:
            with builder.hwloop(1, loop_count):
                for line in body:
                    builder.emit(line)
                builder.emit("addi s4, s4, 1")
        else:
            for line in body:
                builder.emit(line)
        builder.emit("ebreak")
        program = assemble(builder.text())
        twin = roundtrip_program(program)

        def run(prog):
            mem = Memory(1 << 17)
            mem.store_words_array(
                0x8000, np.arange(64, dtype=np.int64) * 77777)
            cpu = Cpu(prog, mem)
            cpu.run()
            return [cpu.reg(i) for i in range(32)], cpu.cycles

        assert run(program) == run(twin)
