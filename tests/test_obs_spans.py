"""Span tracing: Chrome trace export and serving-engine integration."""

import json

import numpy as np

from repro.obs.spans import SpanTracer
from repro.rrm.networks import suite
from repro.serve.engine import EngineConfig, InferenceEngine

NETWORKS = suite(4)


def _input(network, seed=0):
    rng = np.random.default_rng(seed)
    floats = rng.uniform(-1.0, 1.0, network.input_size)
    return np.asarray(floats * 4096, dtype=np.int64)


class TestSpanTracer:
    def test_complete_and_instant_events(self):
        clock = iter([0.0, 0.001, 0.003, 0.004]).__next__
        tracer = SpanTracer(clock=clock)
        start = tracer.now_us()
        tracer.complete("work", "worker", start)
        tracer.instant("mark", "worker")
        assert tracer.n_events == 2
        trace = tracer.to_chrome_trace()
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert spans[0]["name"] == "work"
        assert spans[0]["dur"] == 2000.0
        assert instants[0]["s"] == "t"

    def test_track_metadata(self):
        tracer = SpanTracer(process_name="proc")
        tracer.instant("a", "track-one")
        tracer.instant("b", "track-two")
        trace = tracer.to_chrome_trace()
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        names = {e["args"].get("name") for e in meta
                 if e["name"] == "thread_name"}
        assert names == {"track-one", "track-two"}
        assert any(e["name"] == "process_name"
                   and e["args"]["name"] == "proc" for e in meta)

    def test_bounded_buffer_drops_newest(self):
        tracer = SpanTracer(max_events=2)
        for i in range(5):
            tracer.instant(f"e{i}", "t")
        assert tracer.n_events == 2
        assert tracer.n_dropped == 3
        trace = tracer.to_chrome_trace()
        assert trace["otherData"]["dropped_events"] == 3

    def test_events_sorted_by_timestamp(self):
        tracer = SpanTracer()
        tracer.complete("late", "t", start_us=500.0, end_us=600.0)
        tracer.complete("early", "t", start_us=10.0, end_us=20.0)
        events = [e for e in tracer.to_chrome_trace()["traceEvents"]
                  if e["ph"] == "X"]
        assert [e["name"] for e in events] == ["early", "late"]

    def test_dump_is_valid_json(self, tmp_path):
        tracer = SpanTracer()
        tracer.instant("x", "t", args={"k": 1})
        path = tmp_path / "trace.json"
        tracer.dump(str(path))
        data = json.loads(path.read_text())
        assert "traceEvents" in data
        assert data["displayTimeUnit"] == "ms"

    def test_negative_duration_clamped(self):
        tracer = SpanTracer()
        tracer.complete("w", "t", start_us=100.0, end_us=50.0)
        event = [e for e in tracer.to_chrome_trace()["traceEvents"]
                 if e["ph"] == "X"][0]
        assert event["dur"] == 0.0


class TestEngineTracing:
    def _traced_engine(self, **overrides):
        tracer = SpanTracer()
        defaults = dict(level="e", max_batch_size=4, max_linger_s=0.001)
        defaults.update(overrides)
        engine = InferenceEngine(networks=NETWORKS,
                                 config=EngineConfig(**defaults),
                                 tracer=tracer)
        return engine, tracer

    def test_trace_ids_surface_in_responses(self):
        engine, _tracer = self._traced_engine()
        network = NETWORKS[0]
        with engine:
            request = engine.submit(network.name, _input(network))
            request.wait(timeout=5.0)
        assert request.ok
        assert request.trace_id == f"{network.name}-{request.id}"

    def test_trace_ids_assigned_without_tracer(self):
        engine = InferenceEngine(networks=NETWORKS,
                                 config=EngineConfig(level="e"))
        network = NETWORKS[0]
        with engine:
            request = engine.submit(network.name, _input(network))
            request.wait(timeout=5.0)
        assert request.trace_id

    def test_pipeline_spans_recorded(self):
        engine, tracer = self._traced_engine()
        network = NETWORKS[0]
        with engine:
            requests = [engine.submit(network.name, _input(network, i))
                        for i in range(4)]
            for request in requests:
                request.wait(timeout=5.0)
        trace = tracer.to_chrome_trace()
        names = {e["name"] for e in trace["traceEvents"]}
        assert {"enqueue", "batch-assembly", "execute", "respond"} <= names
        respond = [e for e in trace["traceEvents"]
                   if e["name"] == "respond"]
        got = {e["args"]["trace_id"] for e in respond}
        assert got == {r.trace_id for r in requests}

    def test_execute_span_has_batch_args(self):
        engine, tracer = self._traced_engine()
        network = NETWORKS[0]
        with engine:
            requests = [engine.submit(network.name, _input(network, i))
                        for i in range(3)]
            for request in requests:
                request.wait(timeout=5.0)
        executes = [e for e in tracer.to_chrome_trace()["traceEvents"]
                    if e["name"] == "execute"]
        assert executes
        for event in executes:
            assert event["args"]["ok"] is True
            assert event["args"]["depth"] == 0
            assert event["args"]["batch"] >= 1

    def test_untraced_engine_has_no_tracer_overhead_objects(self):
        engine = InferenceEngine(networks=NETWORKS,
                                 config=EngineConfig(level="e"))
        assert engine.tracer is None
        assert engine._injector_metrics is engine.metrics


class TestChaosTracing:
    def test_chaos_bench_emits_perfetto_trace(self, tmp_path):
        from repro.serve.chaos import run_chaos_bench
        trace_path = tmp_path / "chaos_trace.json"
        result = run_chaos_bench(scale=4, n_requests=40, duration_s=0.5,
                                 out_path=None,
                                 trace_out=str(trace_path))
        assert result["trace"]["path"] == str(trace_path)
        assert result["trace"]["events"] > 0
        data = json.loads(trace_path.read_text())
        phases = {e["ph"] for e in data["traceEvents"]}
        assert {"M", "X"} <= phases
        names = {e["name"] for e in data["traceEvents"]}
        assert "execute" in names
        # Injected faults appear as instants on the faults track.
        assert any(name.startswith("fault:") for name in names)
