"""Seeded fuzz corpus for the abstract-interpretation certifier.

Each case is a random straight-line/loop/branch program over the safe
subset of the ISA (terminating by construction, concretely in-bounds so
the ISS itself never traps).  The certifier must analyze every case
without crashing and every claim it makes — register ranges, access
footprints, trip counts — must survive a real ISS run under
:func:`observe_run`, which raises :class:`SoundnessViolation` on any
escape.  Unproven accesses are allowed (imprecision is fine); wrong
claims are not (unsoundness is a hard failure).
"""

import random

from repro.analysis import Footprint, analyze, observe_run
from repro.core import Cpu, Memory
from repro.isa import assemble

MEM = 4096
N_CASES = 200

_DATA = ("t0", "t1", "t2", "t3", "t4", "a2", "a3")
_ALU2 = ("add", "sub", "and", "or", "xor", "mul", "slt",
         "p.min", "p.max", "p.mac")
_ALUI = ("addi", "andi", "ori", "xori", "slti")
_SHIFT = ("slli", "srli", "srai")


class _Gen:
    """One random program; emits asm text into ``self.lines``."""

    def __init__(self, rng):
        self.rng = rng
        self.lines = []
        self.labels = 0
        # a0: fixed base pointer; a1: post-increment cursor.
        self.base = rng.randrange(64, MEM // 2, 4)
        self.emit(f"addi a0, x0, {self.base}")
        for r in _DATA:
            self.emit(f"addi {r}, x0, {rng.randrange(-2048, 2048)}")

    def emit(self, line):
        self.lines.append(line)

    def label(self):
        self.labels += 1
        return f"L{self.labels}"

    def alu_op(self):
        rng = self.rng
        rd = rng.choice(_DATA)
        a, b = rng.choice(_DATA), rng.choice(_DATA)
        kind = rng.randrange(6)
        if kind == 0:
            self.emit(f"{rng.choice(_ALUI)} {rd}, {a}, "
                      f"{rng.randrange(-2048, 2048)}")
        elif kind == 1:
            self.emit(f"{rng.choice(_SHIFT)} {rd}, {a}, "
                      f"{rng.randrange(0, 16)}")
        elif kind == 2:
            self.emit(f"p.clip {rd}, {a}, {rng.choice((8, 16))}")
        elif kind == 3:
            self.emit(f"p.abs {rd}, {a}")
        elif kind == 4:
            self.emit(f"{rng.choice(('pl.tanh', 'pl.sig'))} {rd}, {a}")
        else:
            self.emit(f"{rng.choice(_ALU2)} {rd}, {a}, {b}")

    def mem_op(self):
        # Offsets keep a0 accesses inside [base, base + 256).
        rng = self.rng
        rd = rng.choice(_DATA)
        op, size = rng.choice((("lw", 4), ("sw", 4), ("lh", 2),
                               ("sh", 2), ("lhu", 2), ("lb", 1),
                               ("lbu", 1), ("sb", 1)))
        off = rng.randrange(0, 256 // size) * size
        self.emit(f"{op} {rd}, {off}(a0)")

    def straight(self):
        for _ in range(self.rng.randrange(2, 7)):
            self.alu_op() if self.rng.random() < 0.7 else self.mem_op()

    def forward_branch(self):
        rng = self.rng
        skip = self.label()
        op = rng.choice(("beq", "bne", "blt", "bge"))
        self.emit(f"{op} {rng.choice(_DATA)}, {rng.choice(_DATA)}, "
                  f"{skip}")
        self.straight()
        self.emit(f"{skip}:")

    def br_loop(self):
        # s0 counts 0..trips against the constant bound in s1; a1 is
        # re-anchored so the post-increment loads stay in bounds.
        rng = self.rng
        trips = rng.randrange(1, 9)
        cursor = rng.randrange(MEM // 2, MEM - 4 * trips - 4, 4)
        head = self.label()
        self.emit("addi s0, x0, 0")
        self.emit(f"addi s1, x0, {trips}")
        self.emit(f"addi a1, x0, {cursor}")
        self.emit(f"{head}:")
        for _ in range(rng.randrange(1, 4)):
            self.alu_op()
        if rng.random() < 0.5:
            self.mem_op()
        if rng.random() < 0.5:
            self.emit(f"p.lw {rng.choice(_DATA)}, 4(a1!)")
        self.emit("addi s0, s0, 1")
        op = rng.choice(("blt", "bne", "bltu"))
        self.emit(f"{op} s0, s1, {head}")

    def hw_loop(self):
        rng = self.rng
        end = self.label()
        self.emit(f"lp.setupi 0, {rng.randrange(1, 9)}, {end}")
        for _ in range(rng.randrange(2, 5)):
            self.alu_op()
        self.emit(f"{end}:")

    def build(self):
        rng = self.rng
        for _ in range(rng.randrange(1, 5)):
            block = rng.random()
            if block < 0.35:
                self.straight()
            elif block < 0.55:
                self.forward_branch()
            elif block < 0.8:
                self.br_loop()
            else:
                self.hw_loop()
        self.emit("ebreak")
        return "\n".join(self.lines)


def _check_case(text):
    program = assemble(text)
    cert = analyze(program, Footprint.default(MEM))
    cpu = Cpu(program, Memory(MEM))
    stats = observe_run(cpu, cert, 0)
    assert stats["steps"] > 0
    for fact in cert.loops:
        if fact.trip and fact.trip[0] == fact.trip[1]:
            assert stats["counts"].get(fact.back, 0) % fact.trip[0] == 0
    return cert


def test_fuzz_corpus():
    modes = set()
    for seed in range(N_CASES):
        text = _Gen(random.Random(seed)).build()
        try:
            cert = _check_case(text)
        except AssertionError:
            raise AssertionError(f"soundness escape at seed {seed}:\n"
                                 f"{text}") from None
        modes.add(cert.mode)
    # The corpus must exercise the precise analyzer; the CFG-fixpoint
    # fallback may or may not trigger depending on shapes.
    assert "structured" in modes


# ---------------------------------------------------------------------------
# Hand-written zero/one-trip hardware-loop edges


def _run_and_certify(text):
    program = assemble(text)
    cert = analyze(program, Footprint.default(MEM))
    cpu = Cpu(program, Memory(MEM))
    stats = observe_run(cpu, cert, 0)
    return cert, stats


def test_hw_loop_zero_count_register_skips_body():
    cert, stats = _run_and_certify(
        "addi t0, x0, 0\n"
        "addi t1, x0, 7\n"
        "lp.setup 0, t0, end\n"
        "addi t1, t1, 1\n"
        "end:\n"
        "ebreak\n")
    assert stats["counts"].get(3, 0) == 0      # body never ran
    [fact] = [f for f in cert.loops if f.kind == "hw"]
    assert fact.trip == (0, 0)


def test_hw_loop_setupi_runs_exactly_imm_times():
    cert, stats = _run_and_certify(
        "addi t1, x0, 0\n"
        "lp.setupi 0, 5, end\n"
        "addi t1, t1, 1\n"
        "end:\n"
        "ebreak\n")
    assert stats["counts"][2] == 5
    [fact] = [f for f in cert.loops if f.kind == "hw"]
    assert fact.trip == (5, 5)


def test_hw_loop_setupi_one_runs_once():
    cert, stats = _run_and_certify(
        "addi t1, x0, 0\n"
        "lp.setupi 0, 1, end\n"
        "addi t1, t1, 1\n"
        "end:\n"
        "ebreak\n")
    assert stats["counts"][2] == 1
    [fact] = [f for f in cert.loops if f.kind == "hw"]
    assert fact.trip == (1, 1)


def test_br_loop_zero_trip_when_bound_zero():
    # bge exits immediately: the body must be provably skippable.
    cert, stats = _run_and_certify(
        "addi s0, x0, 0\n"
        "addi s1, x0, 0\n"
        "head:\n"
        "bge s0, s1, done\n"
        "addi s0, s0, 1\n"
        "jal x0, head\n"
        "done:\n"
        "ebreak\n")
    assert stats["counts"].get(3, 0) == 0


def test_unproven_access_reported_not_crashed():
    # A pointer loaded from memory is TOP: the lw through it must be
    # flagged unproven (possible-oob feed), never claimed safe.
    program = assemble("lw t0, 0(x0)\nlw t1, 0(t0)\nebreak\n")
    cert = analyze(program, Footprint.default(MEM))
    assert not cert.proven
    [bad] = cert.unproven
    assert bad.idx == 1 and bad.kind == "load"
    cpu = Cpu(program, Memory(MEM))
    observe_run(cpu, cert, 0)      # claims it *does* make still hold
