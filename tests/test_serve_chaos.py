"""Chaos bench harness: availability, recovery and run-to-run determinism
on a small scripted scenario (the full default scenario runs under
``benchmarks/test_chaos.py``)."""

import json

from repro.faults import FaultPlan, FaultSpec
from repro.rrm.networks import suite
from repro.serve.chaos import default_scenario, run_chaos_bench

NAMES = sorted(net.name for net in suite(4))

# Small but spicy: guaranteed weight corruption on one network (high-rate
# bit flips with a tight integrity cadence forces >= 1 repair) and a
# persistent crash window on another (forces the breaker open; the seq
# counter advances past the window, so probes re-close it).
SCENARIO = FaultPlan([
    FaultSpec(kind="bitflip", network=NAMES[0], start=1, stop=10, rate=3.0),
    FaultSpec(kind="crash", network=NAMES[1], start=0, stop=4,
              transient=False),
])


def _run(out_path=None):
    return run_chaos_bench(scale=4, n_requests=80, duration_s=0.8,
                           integrity_check_every=1, seed=2020,
                           scenario=SCENARIO, out_path=out_path)


class TestChaosBench:
    def test_acceptance_and_artifact(self, tmp_path):
        out = tmp_path / "BENCH_chaos.json"
        result = _run(out_path=str(out))

        # -- availability: non-rejected requests complete bit-exactly.
        assert result["chaos"]["submitted"] == 80
        assert result["availability"] >= 0.90
        assert result["chaos"]["incorrect"] == 0  # repaired, never wrong
        assert result["goodput_rps"] > 0

        # -- faults actually fired, and the guard repaired the weights.
        assert result["faults"]["by_kind"].get("bitflip", 0) >= 1
        assert result["faults"]["by_kind"].get("crash", 0) >= 1
        assert result["integrity_repairs"] >= 1
        assert result["integrity"]["checks"] > 0

        # -- the persistent-crash breaker opened and re-closed.
        assert result["breakers"]["opens"] >= 1
        assert result["all_breakers_reclosed"]
        for durations in result["breakers"]["recovery_s"].values():
            assert all(d >= 0 for d in durations)

        # -- the artifact on disk is the result, JSON-clean.
        written = json.loads(out.read_text())
        assert written["fault_log_sha256"] == result["fault_log_sha256"]
        assert written["availability"] == result["availability"]

    def test_identical_seed_identical_fault_sequence(self):
        first = _run()
        second = _run()
        assert first["faults"]["log"] == second["faults"]["log"]
        assert (first["fault_log_sha256"]
                == second["fault_log_sha256"])
        assert first["faults"]["by_kind"] == second["faults"]["by_kind"]

    def test_default_scenario_shape(self):
        networks = suite(4)
        plan = default_scenario(networks, 300)
        kinds = [spec.kind for spec in plan.specs]
        assert kinds == ["bitflip", "crash", "crash", "latency", "sdc"]
        # Each process targets its own network, windows are bounded.
        assert len({spec.network for spec in plan.specs}) == 4
        assert all(spec.stop is not None for spec in plan.specs)
        transient = [s for s in plan.specs if s.kind == "crash"]
        assert {s.transient for s in transient} == {True, False}
