"""Phi-accrual failure detector on a fake clock: suspicion tracks each
replica's *own* heartbeat cadence, not a global timeout."""

import math

from repro.resilience import PhiAccrualDetector


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def _detector(**kw):
    clock = FakeClock()
    return PhiAccrualDetector(clock=clock, **kw), clock


def _feed(detector, clock, name, interval, beats):
    for _ in range(beats):
        clock.advance(interval)
        detector.heartbeat(name)


class TestPhi:
    def test_unknown_replica_is_not_suspect(self):
        detector, _ = _detector()
        assert detector.phi("ghost") == 0.0
        assert not detector.is_suspect("ghost")
        assert detector.penalty("ghost") == 0.0

    def test_healthy_replica_low_phi(self):
        detector, clock = _detector()
        _feed(detector, clock, "w0", 0.05, 40)
        clock.advance(0.05)  # exactly on cadence
        assert detector.phi("w0") < 1.0
        assert not detector.is_suspect("w0")
        assert detector.penalty("w0") == 0.0

    def test_silence_grows_phi_past_threshold(self):
        detector, clock = _detector(threshold=8.0)
        _feed(detector, clock, "w0", 0.05, 40)
        clock.advance(2.0)  # 40x the cadence
        assert detector.phi("w0") >= 8.0
        assert detector.is_suspect("w0")
        assert detector.penalty("w0") > 0.0

    def test_phi_is_monotone_in_silence(self):
        detector, clock = _detector()
        _feed(detector, clock, "w0", 0.05, 40)
        values = []
        for _ in range(6):
            clock.advance(0.25)
            values.append(detector.phi("w0"))
        assert values == sorted(values)

    def test_adaptive_per_replica_cadence(self):
        """The detector's whole point: a slow-but-regular worker is not
        declared dead by a fast worker's standard, while the same
        silence damns the fast one."""
        detector, clock = _detector()
        # A chatty worker (10ms cadence) and a slow, jittery one
        # (400-600ms cadence) heartbeat side by side.
        next_slow, slow_gap = 0.5, 0.4
        for i in range(500):
            clock.advance(0.01)
            detector.heartbeat("fast")
            if clock.t >= next_slow:
                detector.heartbeat("slow")
                slow_gap = 1.0 - slow_gap  # alternate 0.4s / 0.6s
                next_slow = clock.t + slow_gap
        detector.heartbeat("slow")  # align both, then go silent
        detector.heartbeat("fast")
        clock.advance(0.65)  # both silent for 650ms
        assert detector.is_suspect("fast")
        assert not detector.is_suspect("slow")

    def test_forget_clears_state(self):
        detector, clock = _detector()
        _feed(detector, clock, "w0", 0.05, 10)
        clock.advance(10.0)
        assert detector.is_suspect("w0")
        detector.forget("w0")
        assert detector.phi("w0") == 0.0
        assert "w0" not in detector.snapshot()

    def test_penalty_caps_infinite_phi(self):
        detector, clock = _detector(min_std_s=1e-9)
        _feed(detector, clock, "w0", 0.01, 40)
        clock.advance(1000.0)
        assert math.isinf(detector.phi("w0"))
        assert detector.penalty("w0") == 1e6

    def test_snapshot_reports_all_known(self):
        detector, clock = _detector()
        _feed(detector, clock, "a", 0.05, 5)
        _feed(detector, clock, "b", 0.05, 5)
        snap = detector.snapshot()
        assert set(snap) == {"a", "b"}
        assert all(isinstance(v, float) for v in snap.values())
