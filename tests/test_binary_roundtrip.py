"""Differential execution: a program and its encode/decode round-trip twin
must behave identically — the strongest check that the binary encodings
preserve the semantics of every operand field."""

import numpy as np

from repro.core import Cpu, Memory
from repro.isa import assemble
from repro.isa.binary import program_from_words, roundtrip_program
from repro.kernels import NetworkPlan
from repro.nn import DenseSpec, LstmSpec, Network, init_params, \
    quantize_params


def _run(program, mem_image=None):
    mem = Memory(1 << 18)
    if mem_image:
        for addr, values in mem_image.items():
            mem.store_halfwords(addr, values)
    cpu = Cpu(program, mem)
    trace = cpu.run()
    return [cpu.reg(i) for i in range(32)], trace, mem


class TestDifferentialExecution:
    def test_scalar_program(self):
        src = """
            li a0, 1000
            li a1, -7
        loop:
            p.mac a2, a0, a1
            addi a0, a0, -100
            bne a0, x0, loop
            srai a2, a2, 2
            ebreak
        """
        original = assemble(src)
        twin = roundtrip_program(original)
        regs_a, trace_a, _ = _run(original)
        regs_b, trace_b, _ = _run(twin)
        assert regs_a == regs_b
        assert trace_a == trace_b

    def test_full_network_program(self):
        net = Network("rt", (DenseSpec(6, 10, "relu"), LstmSpec(10, 8),
                             DenseSpec(8, 4, "sig")))
        plan = NetworkPlan(net, "e")
        original = assemble(plan.text)
        twin = roundtrip_program(original)
        # run both on identical memory images
        from repro.kernels import NetworkProgram
        params = quantize_params(init_params(net,
                                             np.random.default_rng(0)))
        prog_a = NetworkProgram(net, params, "e")
        words = prog_a.program.encode_words()
        prog_b = NetworkProgram(net, params, "e")
        prog_b.program = program_from_words(words)
        prog_b.cpu = Cpu(prog_b.program, prog_b.memory,
                         extensions=prog_b.plan.level.extensions)
        rng = np.random.default_rng(1)
        for _ in range(3):
            x = np.asarray(rng.uniform(-1, 1, 6) * 4096, dtype=np.int64)
            out_a = prog_a.step(x)
            out_b = prog_b.step(x)
            assert np.array_equal(out_a, out_b)
        assert prog_a.trace == prog_b.trace

    def test_all_levels_roundtrip_structurally(self):
        net = Network("rt2", (DenseSpec(4, 8, "relu"), DenseSpec(8, 2)))
        for level in "abcde":
            plan = NetworkPlan(net, level)
            original = assemble(plan.text)
            twin = roundtrip_program(original)
            assert len(twin) == len(original)
            for a, b in zip(original, twin):
                assert a.mnemonic == b.mnemonic
                assert (a.rd, a.rs1, a.rs2) == (b.rd, b.rs1, b.rs2)
                assert a.imm == b.imm
                assert (a.imm2, a.loop) == (b.imm2, b.loop)
