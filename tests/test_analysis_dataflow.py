"""Liveness and reaching-definitions over the CFG."""

from repro.analysis import Liveness, ReachingDefs, build_cfg
from repro.isa import assemble
from repro.isa.registers import reg_num


def analyses(source):
    cfg = build_cfg(assemble(source))
    return cfg, Liveness(cfg), ReachingDefs(cfg)


def bit(name):
    return 1 << reg_num(name)


class TestLiveness:
    def test_straight_line_live_ranges(self):
        cfg, live, _ = analyses("""
            addi t0, x0, 1
            addi t1, t0, 2
            sw t1, 0(x0)
            ebreak
        """)
        # After the first addi, t0 is live (read by the second).
        assert live.live_out_at(0) & bit("t0")
        # After the store, nothing is live.
        assert live.live_out_at(2) == 0

    def test_loop_keeps_register_live(self):
        cfg, live, _ = analyses("""
            addi t0, x0, 5
        loop:
            addi t0, t0, -1
            bne t0, x0, loop
            ebreak
        """)
        loop_block = cfg.block_at(1)
        # t0 is live around the back edge.
        assert live.live_in[loop_block.id] & bit("t0")
        assert live.live_out[loop_block.id] & bit("t0")

    def test_dead_write_detected(self):
        cfg, live, _ = analyses("""
            addi t0, x0, 1
            addi t0, x0, 2
            sw t0, 0(x0)
            ebreak
        """)
        assert live.dead_writes() == [0]

    def test_write_live_across_hwloop_back_edge_not_dead(self):
        cfg, live, _ = analyses("""
            addi t1, x0, 0x100
            lp.setupi 0, 4, end
            addi t2, t1, 0
            p.lw t3, 4(t1!)
        end:
            sw t3, 0(x0)
            ebreak
        """)
        # The post-increment write to t1 in the loop body is read on the
        # next iteration via the back edge.
        assert 3 not in live.dead_writes()

    def test_unreachable_blocks_not_scanned(self):
        cfg, live, _ = analyses("""
            ebreak
            addi t5, x0, 9
        """)
        assert live.dead_writes() == []


class TestReachingDefs:
    def test_use_of_initialized_register_clean(self):
        _, _, reach = analyses("""
            addi t0, x0, 1
            addi t1, t0, 1
            ebreak
        """)
        assert reach.uses_before_def() == []

    def test_use_before_def_flagged(self):
        _, _, reach = analyses("""
            addi t1, t0, 1
            ebreak
        """)
        ((idx, mask),) = reach.uses_before_def()
        assert idx == 0
        assert mask == bit("t0")

    def test_branch_join_keeps_maybe_uninit(self):
        # t2 is defined on only one path to the join, so the read after
        # the join is possibly-uninitialized.
        _, _, reach = analyses("""
            bne t0, x0, skip
            addi t2, x0, 7
        skip:
            addi t3, t2, 1
            ebreak
        """)
        flagged = {idx: mask for idx, mask in reach.uses_before_def()}
        assert 2 in flagged and flagged[2] & bit("t2")

    def test_def_sites(self):
        _, _, reach = analyses("""
            addi t0, x0, 1
            addi t0, x0, 2
            ebreak
        """)
        assert reach.def_sites(reg_num("t0")) == [0, 1]

    def test_x0_never_tracked(self):
        _, live, reach = analyses("""
            addi x0, x0, 1
            ebreak
        """)
        assert reach.uses_before_def() == []
        assert live.dead_writes() == []
