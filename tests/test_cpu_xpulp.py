"""Xpulp SIMD and the paper's Xrnn instruction semantics."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import Cpu, Memory
from repro.fixedpoint import SIG_TABLE, TANH_TABLE, pack2, pla_apply, unpack2
from repro.isa import assemble

M32 = 0xFFFFFFFF
int16s = st.integers(min_value=-32768, max_value=32767)


def run_rr(op, a, b, acc=0):
    cpu = Cpu(assemble(f"{op} a2, a0, a1\nebreak\n"))
    cpu.set_reg(10, a & M32)
    cpu.set_reg(11, b & M32)
    cpu.set_reg(12, acc & M32)
    cpu.run()
    return cpu.reg(12)


class TestSimd:
    @given(int16s, int16s, int16s, int16s)
    def test_pv_add_sub(self, a0, a1, b0, b1):
        a, b = pack2(a0, a1), pack2(b0, b1)
        lo, hi = unpack2(run_rr("pv.add.h", a, b))
        assert (lo - (a0 + b0)) % 65536 == 0
        assert (hi - (a1 + b1)) % 65536 == 0
        lo, hi = unpack2(run_rr("pv.sub.h", a, b))
        assert (lo - (a0 - b0)) % 65536 == 0
        assert (hi - (a1 - b1)) % 65536 == 0

    @given(int16s, int16s, int16s, int16s, int16s)
    def test_pv_sdotsp_accumulates(self, a0, a1, b0, b1, acc):
        out = run_rr("pv.sdotsp.h", pack2(a0, a1), pack2(b0, b1), acc)
        expected = (acc + a0 * b0 + a1 * b1) & M32
        assert out == expected

    @given(int16s, int16s, st.integers(0, 15))
    def test_pv_sra(self, a0, a1, sh):
        cpu = Cpu(assemble(f"pv.sra.h a2, a0, {sh}\nebreak\n"))
        cpu.set_reg(10, pack2(a0, a1))
        cpu.run()
        lo, hi = unpack2(cpu.reg(12))
        assert lo == a0 >> sh
        assert hi == a1 >> sh

    @given(int16s, int16s)
    def test_pack_extract(self, lo, hi):
        cpu = Cpu(assemble(
            "pv.pack.h a2, a0, a1\n"
            "pv.extract.h a3, a2, 0\n"
            "pv.extract.h a4, a2, 1\n"
            "ebreak\n"))
        cpu.set_reg(10, lo & M32)
        cpu.set_reg(11, hi & M32)
        cpu.run()
        assert cpu.reg(12) == pack2(lo, hi)
        assert cpu.reg_s(13) == lo
        assert cpu.reg_s(14) == hi


class TestActivationInstructions:
    @given(st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1))
    @settings(max_examples=300)
    def test_pl_tanh_matches_golden(self, x):
        cpu = Cpu(assemble("pl.tanh a1, a0\nebreak\n"))
        cpu.set_reg(10, x & M32)
        cpu.run()
        assert cpu.reg_s(11) == pla_apply(TANH_TABLE, x)

    @given(st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1))
    @settings(max_examples=300)
    def test_pl_sig_matches_golden(self, x):
        cpu = Cpu(assemble("pl.sig a1, a0\nebreak\n"))
        cpu.set_reg(10, x & M32)
        cpu.run()
        assert cpu.reg_s(11) == pla_apply(SIG_TABLE, x)

    def test_single_cycle(self):
        cpu = Cpu(assemble("pl.tanh a1, a0\npl.sig a2, a0\nebreak\n"))
        trace = cpu.run()
        assert trace.cycles["tanh,sig"] == 2
        assert trace.instrs["tanh,sig"] == 2


class TestPlSdotsp:
    def _weights_cpu(self, src, weights, xvals):
        mem = Memory(1 << 16)
        mem.store_halfwords(0x1000, weights)
        mem.store_halfwords(0x2000, xvals)
        return Cpu(assemble(src), mem)

    def test_preload_then_compute(self):
        # one row, 4 pairs: acc = dot(w, x)
        rng = np.random.default_rng(3)
        w = rng.integers(-1000, 1000, 8)
        x = rng.integers(-1000, 1000, 8)
        cpu = self._weights_cpu("""
            li a0, 0x1000
            li a1, 0x2000
            li a2, 0
            pl.sdotsp.h.0 x0, a0, x0
            lp.setupi 0, 4, end
            p.lw t0, 4(a1!)
            pl.sdotsp.h.0 a2, a0, t0
        end:
            ebreak
        """, w, x)
        cpu.run()
        assert cpu.reg_s(12) == int(np.dot(w, x))

    def test_address_postincrement(self):
        cpu = self._weights_cpu("""
            li a0, 0x1000
            pl.sdotsp.h.0 x0, a0, x0
            pl.sdotsp.h.0 x0, a0, x0
            ebreak
        """, np.zeros(8, dtype=np.int64), np.zeros(4, dtype=np.int64))
        cpu.run()
        assert cpu.reg(10) == 0x1008

    def test_spr_double_buffer_two_rows(self):
        # two rows streamed through SPR0/SPR1 (the Table II pattern, N=2)
        rng = np.random.default_rng(5)
        w = rng.integers(-500, 500, (2, 6))
        x = rng.integers(-500, 500, 6)
        mem = Memory(1 << 16)
        mem.store_halfwords(0x1000, w[0])
        mem.store_halfwords(0x1100, w[1])
        mem.store_halfwords(0x2000, x)
        cpu = Cpu(assemble("""
            li a0, 0x1000
            li a1, 0x1100
            li t1, 0x2000
            li s0, 0
            li s1, 0
            pl.sdotsp.h.0 x0, a0, x0
            pl.sdotsp.h.1 x0, a1, x0
            lp.setupi 0, 3, end
            p.lw t0, 4(t1!)
            pl.sdotsp.h.0 s0, a0, t0
            pl.sdotsp.h.1 s1, a1, t0
        end:
            ebreak
        """), mem)
        cpu.run()
        assert cpu.reg_s(8) == int(np.dot(w[0], x))
        assert cpu.reg_s(9) == int(np.dot(w[1], x))

    def test_spr_reuse_too_soon_stalls(self):
        # back-to-back .0 instructions read SPR0 one cycle after its load
        cpu = self._weights_cpu("""
            li a0, 0x1000
            pl.sdotsp.h.0 x0, a0, x0
            pl.sdotsp.h.0 x0, a0, x0
            pl.sdotsp.h.0 x0, a0, x0
            ebreak
        """, np.zeros(8, dtype=np.int64), [])
        trace = cpu.run()
        # 3 instructions, but the 2nd and 3rd each stall one cycle
        assert trace.instrs["pl.sdot"] == 3
        assert trace.cycles["pl.sdot"] == 5
