"""Message-level fault injection: CRC framing, seeded per-rid fault
decisions, every fault kind's delivery semantics, and the canonical
log digest."""

import numpy as np
import pytest

from repro.resilience import ChannelFaultLog, ChannelFaultPlan, FaultyChannel
from repro.resilience.channel import attach_crc, check_crc, item_crc


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


def _item(rid, payload=None):
    if payload is None:
        payload = np.arange(6, dtype=np.int64) + rid
    return attach_crc((rid, "net", payload, None))


def _channel(plan, sink, seed=2020, name="w0", direction="tx",
             clock=None, log=None):
    return FaultyChannel(name, direction, plan, seed,
                         deliver=lambda items: sink.extend(items),
                         clock=clock or FakeClock(), log=log)


class TestCrcFraming:
    def test_roundtrip(self):
        item = _item(7)
        assert check_crc(item)

    def test_any_field_change_breaks_crc(self):
        rid, net, payload, deadline, crc = _item(7)
        assert not check_crc((rid + 1, net, payload, deadline, crc))
        assert not check_crc((rid, "other", payload, deadline, crc))
        mutated = payload.copy()
        mutated[0] ^= 1
        assert not check_crc((rid, net, mutated, deadline, crc))

    def test_crc_covers_dtype_and_shape(self):
        a = np.zeros(4, dtype=np.int64)
        b = np.zeros(4, dtype=np.int32)
        assert item_crc((1, a)) != item_crc((1, b))
        assert item_crc((1, a)) != item_crc((1, a.reshape(2, 2)))


class TestFaultKinds:
    def _one_kind(self, kind):
        kw = {f"{kind}_p": 1.0}
        return ChannelFaultPlan(**kw)

    def test_pass_through_without_plan(self):
        sink = []
        channel = _channel(None, sink)
        items = [_item(1), _item(2)]
        channel.send(items)
        assert sink == items

    def test_drop_suppresses_delivery(self):
        sink = []
        log = ChannelFaultLog()
        channel = _channel(self._one_kind("drop"), sink, log=log)
        channel.send([_item(1)])
        assert sink == []
        assert log.counts() == {"drop": 1}

    def test_duplicate_delivers_twice(self):
        sink = []
        channel = _channel(self._one_kind("duplicate"), sink)
        channel.send([_item(1)])
        assert len(sink) == 2
        assert sink[0][0] == sink[1][0] == 1

    def test_corrupt_breaks_crc_but_keeps_rid(self):
        sink = []
        channel = _channel(self._one_kind("corrupt"), sink)
        channel.send([_item(9)])
        (delivered,) = sink
        assert delivered[0] == 9          # rid always salvageable
        assert not check_crc(delivered)   # receiver detects and NAKs

    def test_reorder_lands_after_next_send(self):
        sink = []
        plan = ChannelFaultPlan(reorder_p=1.0, stop=1)  # only rid 1
        channel = _channel(plan, sink)
        channel.send([_item(1)])
        assert sink == []                 # held
        channel.send([_item(2)])
        assert [item[0] for item in sink] == [2, 1]

    def test_delay_holds_until_flush_past_due(self):
        sink = []
        clock = FakeClock()
        channel = _channel(ChannelFaultPlan(delay_p=1.0, delay_s=0.5),
                           sink, clock=clock)
        channel.send([_item(1)])
        assert sink == []
        channel.flush()
        assert sink == []                 # not due yet
        clock.t = 0.6
        channel.flush()
        assert [item[0] for item in sink] == [1]

    def test_close_flushes_everything_held(self):
        sink = []
        clock = FakeClock()
        plan = ChannelFaultPlan(delay_p=0.5, reorder_p=0.5, delay_s=9.0)
        channel = _channel(plan, sink, clock=clock)
        channel.send([_item(rid) for rid in range(6)])
        held = 6 - len(sink)
        assert held > 0
        channel.close()
        assert len(sink) == 6
        channel.send([_item(99)])         # closed: refused
        assert len(sink) == 6

    def test_drop_pending_discards_and_closes(self):
        sink = []
        clock = FakeClock()
        channel = _channel(ChannelFaultPlan(delay_p=1.0, delay_s=9.0),
                           sink, clock=clock)
        channel.send([_item(1), _item(2)])
        assert channel.drop_pending() == 2
        assert sink == []
        clock.t = 100.0
        channel.flush()
        channel.send([_item(3)])
        assert sink == []                 # closed for good


class TestDeterminism:
    PLAN = ChannelFaultPlan(drop_p=0.1, duplicate_p=0.1, corrupt_p=0.1,
                            reorder_p=0.1, delay_p=0.1, delay_s=0.01)

    def test_same_seed_same_decisions_and_digest(self):
        logs = []
        for _ in range(2):
            log = ChannelFaultLog()
            sink = []
            channel = _channel(self.PLAN, sink, seed=7, log=log)
            channel.send([_item(rid) for rid in range(200)])
            channel.close()
            logs.append(log)
        assert logs[0].canonical() == logs[1].canonical()
        assert logs[0].digest() == logs[1].digest()
        assert len(logs[0]) > 0

    def test_decision_cached_per_rid(self):
        """A resend of the same rid on the same channel repeats its
        fate; that is why the router redispatches NAKed rids to a
        *different* replica."""
        sink = []
        channel = _channel(self.PLAN, sink, seed=7)
        channel.send([_item(rid) for rid in range(50)])
        first = channel.decisions()
        channel.send([_item(rid) for rid in range(50)])
        assert channel.decisions() == first

    def test_channels_draw_independently(self):
        decisions = {}
        for name, direction in (("w0", "tx"), ("w0", "rx"), ("w1", "tx")):
            sink = []
            channel = _channel(self.PLAN, sink, seed=7, name=name,
                               direction=direction)
            channel.send([_item(rid) for rid in range(100)])
            decisions[(name, direction)] = channel.decisions()
        assert decisions[("w0", "tx")] != decisions[("w0", "rx")]
        assert decisions[("w0", "tx")] != decisions[("w1", "tx")]

    def test_digest_independent_of_record_order(self):
        a, b = ChannelFaultLog(), ChannelFaultLog()
        events = [("w0", "tx", 3, "drop", 0), ("w1", "rx", 1, "delay", 4),
                  ("w0", "rx", 2, "corrupt", 1)]
        for event in events:
            a.record(*event)
        for event in reversed(events):
            b.record(*event)
        assert a.digest() == b.digest()

    def test_probability_sum_validated(self):
        with pytest.raises(ValueError):
            ChannelFaultPlan(drop_p=0.6, corrupt_p=0.6)
