"""Load generator, serve-bench driver, and the serve-bench CLI."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.rrm.networks import suite
from repro.serve.engine import InferenceEngine
from repro.serve.loadgen import (LoadGenerator, make_request_stream,
                                 render_table, run_serve_bench,
                                 sequential_baseline)

NETWORKS = suite(4)


class TestStream:
    def test_stream_is_reproducible(self):
        first = make_request_stream(NETWORKS, 20, seed=5)
        second = make_request_stream(NETWORKS, 20, seed=5)
        assert [n.name for n, _ in first] == [n.name for n, _ in second]
        for (_, xa), (_, xb) in zip(first, second):
            assert np.array_equal(xa, xb)

    def test_stream_shapes_match_networks(self):
        for network, x in make_request_stream(NETWORKS, 30, seed=1):
            assert x.shape == (network.timesteps, network.input_size)
            assert x.dtype == np.int64

    def test_arrivals_are_increasing(self):
        engine = InferenceEngine(networks=NETWORKS)
        generator = LoadGenerator(engine, rate_rps=1000.0, seed=3)
        arrivals = generator.arrival_times(50)
        assert arrivals.shape == (50,)
        assert np.all(np.diff(arrivals) >= 0)

    def test_rate_must_be_positive(self):
        engine = InferenceEngine(networks=NETWORKS)
        with pytest.raises(ValueError):
            LoadGenerator(engine, rate_rps=0.0)


class TestBaseline:
    def test_sequential_baseline_counts(self):
        engine = InferenceEngine(networks=NETWORKS)
        stream = make_request_stream(NETWORKS, 10, seed=2)
        baseline = sequential_baseline(engine, stream)
        assert baseline["requests"] == 10
        assert baseline["elapsed_s"] > 0
        assert baseline["throughput_rps"] > 0


class TestServeBench:
    def test_bench_writes_json_and_beats_sequential(self, tmp_path):
        out = tmp_path / "BENCH_serve.json"
        result = run_serve_bench(scale=4, n_requests=120,
                                 out_path=str(out))
        assert out.exists()
        on_disk = json.loads(out.read_text())
        assert on_disk["bench"] == "serve"
        assert on_disk["submitted"] == 120
        assert (result["completed"]
                + result["rejected_timeout"]
                + result["rejected_capacity"]
                + result["metrics"]["total"]["failed"]) == 120
        # The point of the subsystem: batched serving must outrun the
        # sequential per-sample baseline on the same request stream.
        assert result["achieved_throughput_rps"] > \
            result["baseline_sequential"]["throughput_rps"]
        assert result["mean_batch_size"] > 1.0
        assert result["latency"]["p99_s"] >= result["latency"]["p50_s"]
        assert result["sim_cycles_total"] > 0

    def test_render_table_mentions_every_network(self):
        result = run_serve_bench(scale=4, n_requests=60)
        table = render_table(result)
        for network in NETWORKS:
            assert network.name in table
        assert "achieved throughput" in table
        assert "sequential baseline" in table


class TestCli:
    def test_serve_bench_command(self, tmp_path, capsys):
        out = tmp_path / "BENCH_serve.json"
        assert main(["serve-bench", "--requests", "60",
                     "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "achieved throughput" in printed
        assert "sequential baseline" in printed
        data = json.loads(out.read_text())
        assert data["submitted"] == 60
