"""RRM benchmark suite definitions, scaling, scenarios, WMMSE, trainer."""

import numpy as np
import pytest

from repro.nn import ConvSpec, DenseSpec, LstmSpec
from repro.rrm import (FULL_SUITE, InterferenceChannel, MLPTrainer,
                       NETWORK_ORDER, SpectrumAccessEnv, make_wmmse_dataset,
                       suite, sum_rate, train_power_allocator,
                       wmmse_power_allocation)


class TestSuiteDefinitions:
    def test_ten_networks_in_order(self):
        assert len(FULL_SUITE) == 10
        assert tuple(n.name for n in FULL_SUITE) == NETWORK_ORDER

    def test_kernel_mix_matches_paper(self):
        kinds = {n.name: {type(l).__name__ for l in n.layers}
                 for n in FULL_SUITE}
        assert "LstmSpec" in kinds["challita2017"]
        assert "LstmSpec" in kinds["naparstek2019"]
        assert "ConvSpec" in kinds["lee2018"]
        fc_only = [n for n in FULL_SUITE
                   if n.name not in ("challita2017", "naparstek2019",
                                     "lee2018")]
        for net in fc_only:
            assert all(isinstance(l, DenseSpec) for l in net.layers)

    def test_lstm_activation_budget(self):
        """Table Ic shows 0.4 kcycles of tanh/sig: the two LSTM networks
        must produce ~400 activation evaluations per suite pass (4n gate
        activations plus n pointwise tanh per timestep)."""
        total = 0
        for net in FULL_SUITE[:2]:
            for spec in net.layers:
                if isinstance(spec, LstmSpec):
                    total += net.timesteps * 5 * spec.n
        assert total == 400

    def test_suite_macs_order_of_magnitude(self):
        total = sum(n.macs_per_inference for n in FULL_SUITE)
        # paper: 1.62M MACs per suite pass; ours must be the same order
        assert 0.8e6 < total < 2.5e6

    def test_small_fm_networks_are_smallest(self):
        sizes = {n.name: n.macs_per_inference for n in FULL_SUITE}
        assert sizes["eisen2019"] == min(sizes.values())
        assert sizes["wang2018"] < np.median(list(sizes.values()))

    def test_lstm_widths_even(self):
        for net in FULL_SUITE:
            for spec in net.layers:
                if isinstance(spec, LstmSpec):
                    assert spec.m % 2 == 0 and spec.n % 2 == 0


class TestScaling:
    @pytest.mark.parametrize("scale", (1, 2, 4, 8))
    def test_scaled_suite_is_consistent(self, scale):
        for net in suite(scale):
            assert net.layers  # Network validates chaining on construction
            for spec in net.layers:
                if isinstance(spec, (DenseSpec, LstmSpec)):
                    assert spec.out_size % 2 == 0

    def test_scale_one_is_identity(self):
        assert suite(1) == FULL_SUITE

    def test_scaling_shrinks_macs(self):
        full = sum(n.macs_per_inference for n in FULL_SUITE)
        scaled = sum(n.macs_per_inference for n in suite(4))
        assert scaled < full / 6

    def test_conv_chain_scales_spatially_consistently(self):
        lee = next(n for n in suite(4) if n.name == "lee2018")
        convs = [l for l in lee.layers if isinstance(l, ConvSpec)]
        assert convs[1].h == convs[0].h_out
        assert convs[1].cin == convs[0].cout

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2")
        from repro.rrm.networks import default_scale
        assert default_scale() == 2
        monkeypatch.setenv("REPRO_SCALE", "0")
        with pytest.raises(ValueError):
            default_scale()


class TestInterferenceChannel:
    def test_gain_matrix_properties(self):
        scenario = InterferenceChannel(6, seed=0)
        gains = scenario.gain_matrix()
        assert gains.shape == (6, 6)
        assert np.all(gains > 0)
        # normalization: median direct gain is 1
        assert np.median(np.diag(gains)) == pytest.approx(1.0)

    def test_direct_links_dominate_on_average(self):
        scenario = InterferenceChannel(8, seed=1)
        direct, cross = [], []
        for _ in range(20):
            gains = scenario.gain_matrix()
            direct.append(np.mean(np.diag(gains)))
            cross.append(np.mean(gains - np.diag(np.diag(gains))))
        assert np.mean(direct) > 5 * np.mean(cross)

    def test_features_shape_and_range(self):
        scenario = InterferenceChannel(4, seed=2)
        gains = scenario.gain_matrix()
        feats = scenario.features(gains, 16)
        assert feats.shape == (16,)
        assert np.all(np.abs(feats) <= 1.0)
        padded = scenario.features(gains, 20)
        assert np.all(padded[16:] == 0)
        truncated = scenario.features(gains, 9)
        assert truncated.shape == (9,)

    def test_seed_reproducibility(self):
        a = InterferenceChannel(5, seed=9).gain_matrix()
        b = InterferenceChannel(5, seed=9).gain_matrix()
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            InterferenceChannel(0)


class TestWmmse:
    def test_symmetric_strong_interference_goes_binary(self):
        gains = np.array([[1.0, 0.9], [0.9, 1.0]])
        power = wmmse_power_allocation(gains, noise=0.1)
        assert sorted(power.round(3)) == [0.0, 1.0]

    def test_no_interference_full_power(self):
        gains = np.eye(3)
        power = wmmse_power_allocation(gains, noise=0.5)
        assert np.allclose(power, 1.0, atol=1e-3)

    def test_never_exceeds_budget(self):
        scenario = InterferenceChannel(5, seed=3)
        for _ in range(5):
            power = wmmse_power_allocation(scenario.gain_matrix(),
                                           p_max=0.7)
            assert np.all(power <= 0.7 + 1e-9)
            assert np.all(power >= 0)

    def test_beats_or_matches_full_power_in_dense_cells(self):
        scenario = InterferenceChannel(5, area_m=40.0, seed=4)
        wins = 0
        for _ in range(15):
            gains = scenario.gain_matrix()
            rate_w = sum_rate(gains, wmmse_power_allocation(gains))
            rate_f = sum_rate(gains, np.ones(5))
            assert rate_w > 0.85 * rate_f  # never catastrophically worse
            wins += rate_w >= rate_f
        assert wins >= 12

    def test_input_validation(self):
        with pytest.raises(ValueError):
            wmmse_power_allocation(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            wmmse_power_allocation(np.array([[-1.0]]))

    def test_sum_rate_zero_power(self):
        gains = np.eye(2)
        assert sum_rate(gains, np.zeros(2)) == 0.0


class TestSpectrumAccessEnv:
    def test_observation_is_pm_one(self):
        env = SpectrumAccessEnv(6, seed=0)
        obs = env.observation()
        assert set(np.unique(obs)).issubset({-1.0, 1.0})

    def test_reward_consistent_with_occupancy(self):
        env = SpectrumAccessEnv(4, seed=1)
        busy_before = env.occupancy.copy()
        reward, _ = env.step(2)
        assert reward == (-1.0 if busy_before[2] else 1.0)

    def test_occupancy_evolves_stochastically(self):
        env = SpectrumAccessEnv(16, p_busy_to_free=0.5, p_free_to_busy=0.5,
                                seed=2)
        before = env.occupancy.copy()
        env.step(0)
        env.step(0)
        assert not np.array_equal(before, env.occupancy)

    def test_validation(self):
        with pytest.raises(ValueError):
            SpectrumAccessEnv(0)
        with pytest.raises(ValueError):
            SpectrumAccessEnv(4, p_busy_to_free=1.5)
        env = SpectrumAccessEnv(4, seed=3)
        with pytest.raises(ValueError):
            env.step(4)


class TestTrainer:
    def test_loss_decreases(self):
        trainer, _ = train_power_allocator(
            n_pairs=3, hidden=(24,), n_samples=48, epochs=1)
        xs, ys, _ = make_wmmse_dataset(3, 48, seed=0)
        losses = trainer.fit(xs, ys, epochs=15)
        assert losses[-1] < losses[0] * 0.9

    def test_gradient_matches_numerical(self):
        from repro.nn import Network
        net = Network("g", (DenseSpec(3, 4, "relu"), DenseSpec(4, 2, "sig")))
        trainer = MLPTrainer(net, seed=0, lr=0.0)
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, (5, 3))
        y = rng.uniform(0, 1, (5, 2))

        def loss_at(params):
            saved = trainer.params
            trainer.params = params
            out, _ = trainer.forward(x)
            trainer.params = saved
            return np.mean((out - y) ** 2)

        # analytic gradient via a tiny-lr step
        trainer.lr = 1e-3
        base = loss_at(trainer.params)
        import copy
        before = copy.deepcopy(trainer.params)
        trainer.train_batch(x, y)
        grad_w00 = (before[0]["w"][0, 0] - trainer.params[0]["w"][0, 0]) \
            / trainer.lr
        eps = 1e-5
        perturbed = copy.deepcopy(before)
        perturbed[0]["w"][0, 0] += eps
        numeric = (loss_at(perturbed) - base) / eps
        assert grad_w00 == pytest.approx(numeric, rel=0.05, abs=1e-6)

    def test_dense_only_enforced(self):
        from repro.nn import Network
        with pytest.raises(ValueError):
            MLPTrainer(Network("l", (LstmSpec(4, 4),)))

    def test_weights_stay_in_q312_envelope(self):
        trainer, _ = train_power_allocator(
            n_pairs=3, hidden=(16,), n_samples=32, epochs=10)
        for layer in trainer.params:
            assert np.max(np.abs(layer["w"])) <= 4.0
