"""Memory access, control flow, hardware loops and execution limits."""

import numpy as np
import pytest

from repro.core import (BASELINE_EXTENSIONS, Cpu, ExecutionLimitExceeded,
                        Memory, SimError)
from repro.core.memory import Memory as Mem
from repro.isa import assemble


def make_cpu(src, mem=None, **kw):
    return Cpu(assemble(src), mem if mem is not None else Memory(1 << 16),
               **kw)


class TestLoadsStores:
    def test_word_roundtrip(self):
        cpu = make_cpu("""
            li a0, 0x100
            li a1, -123456
            sw a1, 0(a0)
            lw a2, 0(a0)
            ebreak
        """)
        cpu.run()
        assert cpu.reg_s(12) == -123456

    def test_half_sign_extension(self):
        cpu = make_cpu("""
            li a0, 0x100
            li a1, 0x8001
            sh a1, 2(a0)
            lh a2, 2(a0)
            lhu a3, 2(a0)
            ebreak
        """)
        cpu.run()
        assert cpu.reg_s(12) == -32767
        assert cpu.reg(13) == 0x8001

    def test_byte_access(self):
        cpu = make_cpu("""
            li a0, 0x104
            li a1, 0xFF
            sb a1, 1(a0)
            lb a2, 1(a0)
            lbu a3, 1(a0)
            ebreak
        """)
        cpu.run()
        assert cpu.reg_s(12) == -1
        assert cpu.reg(13) == 0xFF

    def test_halfword_store_preserves_neighbor(self):
        cpu = make_cpu("""
            li a0, 0x100
            li a1, 0x1234
            li a2, 0x5678
            sh a1, 0(a0)
            sh a2, 2(a0)
            lw a3, 0(a0)
            ebreak
        """)
        cpu.run()
        assert cpu.reg(13) == 0x56781234

    def test_postincrement_load_and_store(self):
        cpu = make_cpu("""
            li a0, 0x100
            li a1, 7
            p.sw a1, 4(a0!)
            p.sw a1, 4(a0!)
            li a0, 0x100
            p.lw a2, 4(a0!)
            p.lw a3, 4(a0!)
            ebreak
        """)
        cpu.run()
        assert cpu.reg(12) == 7
        assert cpu.reg(13) == 7
        assert cpu.reg(10) == 0x108

    def test_negative_postincrement(self):
        cpu = make_cpu("""
            li a0, 0x108
            p.lw a1, -4(a0!)
            ebreak
        """)
        cpu.run()
        assert cpu.reg(10) == 0x104


class TestBranchesJumps:
    def test_all_branch_conditions(self):
        src = """
            li a0, -1
            li a1, 1
            li a7, 0
            blt a0, a1, l1
            j fail
        l1: bltu a1, a0, l2     # unsigned: 1 < 0xFFFFFFFF
            j fail
        l2: bge a1, a0, l3
            j fail
        l3: bgeu a0, a1, l4
            j fail
        l4: beq a0, a0, l5
            j fail
        l5: bne a0, a1, ok
        fail:
            li a7, 1
        ok: ebreak
        """
        cpu = make_cpu(src)
        cpu.run()
        assert cpu.reg(17) == 0

    def test_jal_links(self):
        cpu = make_cpu("""
            jal ra, fn
            ebreak
        fn:
            li a0, 42
            ret
        """)
        cpu.run()
        assert cpu.reg(10) == 42
        assert cpu.halted

    def test_jalr_computed_target(self):
        cpu = make_cpu("""
            li t0, 12
            jalr ra, t0, 0
            li a0, 1
        target:
            ebreak
        """)
        cpu.run()
        assert cpu.reg(10) == 0  # skipped the li
        assert cpu.reg(1) == 8


class TestHardwareLoops:
    def test_setupi_iterates(self):
        cpu = make_cpu("""
            li a0, 0
            lp.setupi 0, 10, end
            addi a0, a0, 1
            addi a0, a0, 1
        end:
            ebreak
        """)
        cpu.run()
        assert cpu.reg(10) == 20

    def test_setup_register_count(self):
        cpu = make_cpu("""
            li a0, 0
            li t0, 7
            lp.setup 1, t0, end
            addi a0, a0, 3
        end:
            ebreak
        """)
        cpu.run()
        assert cpu.reg(10) == 21

    def test_setup_zero_count_skips_body(self):
        cpu = make_cpu("""
            li a0, 0
            li t0, 0
            lp.setup 0, t0, end
            addi a0, a0, 1
        end:
            ebreak
        """)
        cpu.run()
        assert cpu.reg(10) == 0

    def test_nested_loops(self):
        cpu = make_cpu("""
            li a0, 0
            li t0, 4
            lp.setup 1, t0, outer_end
            lp.setupi 0, 3, inner_end
            addi a0, a0, 1
        inner_end:
            addi a0, a0, 10
        outer_end:
            ebreak
        """)
        cpu.run()
        assert cpu.reg(10) == 4 * (3 + 10)

    def test_plain_load_at_loop_end_rejected(self):
        with pytest.raises(SimError):
            make_cpu("""
                li a0, 0x100
                lp.setupi 0, 4, end
                lw a1, 0(a0)
            end:
                ebreak
            """)

    def test_back_edge_is_free(self):
        cpu = make_cpu("""
            lp.setupi 0, 100, end
            addi a0, a0, 1
        end:
            ebreak
        """)
        trace = cpu.run()
        assert trace.cycles["addi"] == 100
        assert trace.cycles["lp.setupi"] == 1


class TestExecutionControl:
    def test_instruction_budget(self):
        cpu = make_cpu("""
        loop:
            j loop
        """, max_instrs=100)
        with pytest.raises(ExecutionLimitExceeded):
            cpu.run()

    def test_extension_gating(self):
        with pytest.raises(SimError):
            Cpu(assemble("pv.sdotsp.h a0, a1, a2\nebreak\n"),
                extensions=BASELINE_EXTENSIONS)
        with pytest.raises(SimError):
            Cpu(assemble("pl.tanh a0, a1\nebreak\n"),
                extensions=BASELINE_EXTENSIONS)
        # mac is available on the paper's baseline (Table Ia)
        Cpu(assemble("p.mac a0, a1, a2\nebreak\n"),
            extensions=BASELINE_EXTENSIONS)

    def test_fall_through_terminates(self):
        cpu = make_cpu("addi a0, x0, 3\n")
        cpu.run()
        assert cpu.reg(10) == 3

    def test_reset_clears_state(self):
        cpu = make_cpu("addi a0, a0, 5\nebreak\n")
        cpu.run()
        assert cpu.reg(10) == 5
        cpu.reset()
        assert cpu.reg(10) == 0
        assert cpu.cycles == 0
        cpu.run()
        assert cpu.reg(10) == 5

    def test_instret_accumulates(self):
        cpu = make_cpu("addi a0, a0, 1\nebreak\n")
        cpu.run()
        cpu.run()
        assert cpu.instret == 4


class TestMemoryClass:
    def test_alignment_errors(self):
        mem = Mem(1 << 12)
        with pytest.raises(Exception):
            mem.load_word(2)
        with pytest.raises(Exception):
            mem.load_half(1)
        with pytest.raises(Exception):
            mem.store_word(4097 * 4, 0)

    def test_bulk_halfwords_roundtrip(self):
        mem = Mem(1 << 12)
        data = np.arange(-50, 51, dtype=np.int64)
        mem.store_halfwords(0x100, data)
        out = mem.load_halfwords(0x100, data.size)
        assert np.array_equal(out, data)

    def test_bulk_halfwords_odd_alignment(self):
        mem = Mem(1 << 12)
        data = np.array([1, -2, 3, -4, 5], dtype=np.int64)
        mem.store_halfwords(0x102, data)  # half-aligned start
        out = mem.load_halfwords(0x102, 5)
        assert np.array_equal(out, data)

    def test_bulk_unsigned(self):
        mem = Mem(1 << 12)
        mem.store_halfwords(0, [-1])
        assert mem.load_halfwords(0, 1, signed=False)[0] == 0xFFFF

    def test_words_array(self):
        mem = Mem(1 << 12)
        mem.store_words_array(0x40, [1, 2 ** 31, 3])
        out = mem.load_words_array(0x40, 3, signed=False)
        assert out.tolist() == [1, 2 ** 31, 3]

    def test_bad_constructor(self):
        with pytest.raises(ValueError):
            Mem(10)
        with pytest.raises(ValueError):
            Mem(wait_states=-1)
