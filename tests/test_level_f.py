"""Level f (interleaved stream + fused activations) end-to-end."""

import numpy as np
import pytest

from repro.kernels import LEVELS, NetworkProgram
from repro.nn import (ConvSpec, DenseSpec, LstmSpec, Network, init_params,
                      quantize_params)
from repro.rrm import suite
from repro.rrm.suite import network_trace


def _params(net, seed=0):
    return quantize_params(init_params(net, np.random.default_rng(seed)))


def _inputs(net, count, seed=1):
    rng = np.random.default_rng(seed)
    return [np.asarray(rng.uniform(-1, 1, net.input_size) * 4096,
                       dtype=np.int64) for _ in range(count)]


NETS = (
    Network("fd", (DenseSpec(12, 40, "relu"), DenseSpec(40, 20, "tanh"),
                   DenseSpec(20, 6, "sig"))),
    Network("fl", (DenseSpec(6, 12, "relu"), LstmSpec(12, 8),
                   LstmSpec(8, 6), DenseSpec(6, 4, "sig"))),
    Network("fc", (ConvSpec(2, 4, 6, 6, 3), DenseSpec(64, 10, "relu"),
                   DenseSpec(10, 4))),
)


class TestLevelF:
    @pytest.mark.parametrize("net", NETS, ids=lambda n: n.name)
    def test_bit_exact_and_model_match(self, net):
        program = NetworkProgram(net, _params(net), "f")
        program.run_and_check(_inputs(net, 3))
        assert program.trace == program.plan.trace.scaled(3)

    @pytest.mark.parametrize("net", NETS, ids=lambda n: n.name)
    def test_faster_than_level_e(self, net):
        cycles_e = NetworkProgram(net, _params(net), "e") \
            .plan.cycles_per_step
        cycles_f = NetworkProgram(net, _params(net), "f") \
            .plan.cycles_per_step
        assert cycles_f < cycles_e

    def test_level_f_definition(self):
        level = LEVELS["f"]
        assert level.max_tile == 18
        assert level.vliw and level.hw_activations

    def test_suite_gain_shape(self):
        from repro.eval.beyond import compute_beyond
        result = compute_beyond(suite(4))
        assert 0 < result["suite_gain_pct"] < 15
        assert result["suite_speedup_f"] > result["suite_speedup_e"]
        for row in result["rows"]:
            assert row["f"] <= row["e"]

    def test_scaled_suite_iss_validation(self):
        """Every network of the reduced suite runs bit-exactly at level f
        and matches the static model."""
        for network in suite(8):
            params = _params(network, seed=3)
            program = NetworkProgram(network, params, "f")
            program.run_and_check(_inputs(network, network.timesteps,
                                          seed=4))
            iss = program.trace
            model = network_trace(network, "f").scaled(1)
            for t in (iss, model):
                t.instrs.pop("ebreak", None)
                t.cycles.pop("ebreak", None)
            assert iss == model, network.name
