"""Experiment drivers: each must run and reproduce the paper's shape."""

import pytest

from repro.eval import activations, fig2, fig3, section4, table1, table2
from repro.eval.report import banner, render_kv, render_table
from repro.rrm.suite import LEVEL_KEYS


class TestReportHelpers:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["x", 1.5], ["yyy", 2.25]],
                            fmt="{:.2f}")
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.50" in text and "2.25" in text

    def test_render_kv(self):
        text = render_kv([("k", "v"), ("longer", 3)])
        assert "k      : v" in text

    def test_banner(self):
        assert "TITLE" in banner("TITLE")


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return table1.compute_table1()

    def test_improvement_shape(self, result):
        imp = result["improvement"]
        assert imp["a"] == 1.0
        # the paper's factors, within a band
        assert 3.8 <= imp["b"] <= 5.0
        assert 7.3 <= imp["c"] <= 9.5
        assert 12.0 <= imp["d"] <= 15.5
        assert 13.0 <= imp["e"] <= 16.5
        assert imp["e"] > imp["d"] > imp["c"] > imp["b"]

    def test_baseline_histogram_shape(self, result):
        """Table Ia: lh = 2 per MAC, lw = sw = bltu(instr) = mac."""
        trace = result["traces"]["a"]
        mac = trace.instrs["mac"]
        assert trace.instrs["lh"] == pytest.approx(2 * mac, rel=0.02)
        assert trace.instrs["lw"] == pytest.approx(mac, rel=0.05)
        assert trace.instrs["sw"] == pytest.approx(mac, rel=0.05)
        assert trace.cycles["bltu"] == pytest.approx(
            2 * trace.instrs["bltu"], rel=0.02)

    def test_level_b_load_stall_signature(self, result):
        """Table Ib: lw! at ~1.5 cycles per executed load."""
        trace = result["traces"]["b"]
        ratio = trace.cycles["lw!"] / trace.instrs["lw!"]
        assert 1.45 <= ratio <= 1.55

    def test_level_c_loads_stall_free(self, result):
        trace = result["traces"]["c"]
        ratio = trace.cycles["lw!"] / trace.instrs["lw!"]
        assert 1.0 <= ratio <= 1.05

    def test_level_d_input_load_signature(self, result):
        """Table Id: the remaining lw! carries the bubble (2.0 cyc)."""
        trace = result["traces"]["d"]
        ratio = trace.cycles["lw!"] / trace.instrs["lw!"]
        assert 1.9 <= ratio <= 2.05

    def test_level_e_removes_bubble(self, result):
        trace = result["traces"]["e"]
        ratio = trace.cycles["lw!"] / trace.instrs["lw!"]
        assert 1.0 <= ratio <= 1.2

    def test_sdot_counts_grow_slightly_at_e(self, result):
        """Table I d->e: pl.sdot 811 -> 817 (padding effect)."""
        d = result["traces"]["d"].instrs["pl.sdot"]
        e = result["traces"]["e"].instrs["pl.sdot"]
        assert d < e <= 1.04 * d

    def test_tanh_sig_rows_small_at_hw_levels(self, result):
        for key in ("c", "d", "e"):
            trace = result["traces"][key]
            assert trace.cycles.get("tanh,sig", 0) < 0.002 \
                * trace.total_cycles

    def test_formatting_runs(self, result):
        text = table1.format_table1(result)
        assert "Table I" in text
        for key in LEVEL_KEYS:
            assert f"paper: {table1.PAPER_IMPROVEMENT[key]:.1f}x" in text


class TestTable2:
    def test_listing_structure(self):
        listings = table2.generate_listings()
        tiled, vliw = listings["tiled"], listings["vliw"]
        # left: loop with 1 x-load + 4 weight loads + 4 sdotsp
        assert sum(1 for l in tiled if l.startswith("p.lw")) == 5
        assert sum(1 for l in tiled if l.startswith("pv.sdotsp")) == 4
        # right: two SPR preloads then 1 x-load + 4 pl.sdotsp
        assert sum(1 for l in vliw if l.startswith("pl.sdotsp")) == 6
        assert sum(1 for l in vliw if l.startswith("p.lw")) == 1
        # the Table II address-register rotation: a2, a3, a0, a1
        body = [l for l in vliw if l.startswith("pl.sdotsp")][2:]
        regs = [l.split(",")[1].strip() for l in body]
        assert regs == ["a2", "a3", "a0", "a1"]

    def test_format(self):
        text = table2.format_table2()
        assert "pl.sdotsp.h" in text and "with FM tiling only" in text


class TestFig2:
    def test_sweep_monotone_in_intervals(self):
        rows = fig2.sweep()
        assert len(rows) > 10
        by_range = {}
        for rng, count, mse, _ in rows:
            by_range.setdefault(rng, []).append((count, mse))
        for series in by_range.values():
            series.sort()
            mses = [m for _, m in series]
            assert all(a >= b * 0.5 for a, b in zip(mses, mses[1:])), \
                "MSE should broadly fall with more intervals"

    def test_point_design_beats_paper_mse(self):
        point = fig2.point_design("lsq")
        assert point["mse"] < 9.81e-7
        assert point["max_err"] < 2e-3
        assert point["range"] == 4.0
        assert point["n_intervals"] == 32

    def test_format(self):
        text = fig2.format_fig2()
        assert "32" in text and "MSE" in text


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return fig3.compute_fig3()

    def test_small_fm_penalty(self, result):
        per = result["per_network"]
        small = {"eisen2019", "naparstek2019", "wang2018"}
        small_final = [per[n]["e"] for n in small]
        big_final = [v["e"] for n, v in per.items() if n not in small]
        assert max(small_final) < min(big_final)

    def test_ofm_gain_bands(self, result):
        per = result["per_network"]
        for name, speeds in per.items():
            gain = speeds["c"] / speeds["b"]
            if name in ("eisen2019", "wang2018"):
                assert gain < 1.75
            elif name in ("ahmed2019", "ye2018", "nasir2018", "sun2017",
                          "yu2017"):
                assert 1.75 <= gain <= 2.0

    def test_average_matches_table1(self, result):
        from repro.eval.table1 import compute_table1
        t1 = compute_table1()["improvement"]
        for key in LEVEL_KEYS:
            assert result["average"][key] == pytest.approx(t1[key])

    def test_format(self, result):
        text = fig3.format_fig3(result)
        assert "Average" in text and "challita2017" in text


class TestActivationsDriver:
    @pytest.fixture(scope="class")
    def stats(self):
        return activations.compute_activation_stats()

    def test_shares_match_paper(self, stats):
        assert stats["sw_share"]["challita2017"] == pytest.approx(
            0.103, abs=0.03)
        assert stats["sw_share"]["naparstek2019"] == pytest.approx(
            0.336, abs=0.06)

    def test_lstm_totals_near_paper(self, stats):
        assert stats["total_without_k"] == pytest.approx(51.2, rel=0.15)
        assert stats["total_with_k"] == pytest.approx(44.5, rel=0.15)

    def test_improvement_direction(self, stats):
        assert 8.0 <= stats["improvement_pct"] <= 25.0

    def test_format(self, stats):
        text = activations.format_activations(stats)
        assert "10.3%" in text


class TestSection4Driver:
    def test_format_contains_claims(self):
        text = section4.format_section4()
        assert "3.4 %" in text
        assert "GMAC/s/W" in text
        assert "MMAC/s" in text


class TestQuantizationDriver:
    def test_compute_with_small_budget(self):
        from repro.eval.quantization import (compute_quantization,
                                             format_quantization)
        result = compute_quantization(n_pairs=3, n_eval=8, seed=2)
        assert abs(result["rate_loss_pct"]) < 3.0
        assert result["max_output_err"] < 0.05
        text = format_quantization(result)
        assert "no deterioration" in text
