"""Fault plans and the deterministic injector (``repro.faults``)."""

import numpy as np
import pytest

from repro.faults import (FaultInjector, FaultPlan, FaultSpec, InjectedCrash,
                          InjectedWorkerDeath, flip_bit16)
from repro.rrm.networks import suite
from repro.serve.engine import ModelRegistry

SEED = 2020
NETWORKS = suite(4)
NET = NETWORKS[0]


class _Req:
    """Minimal stand-in for an engine request (only ``seq`` matters)."""

    def __init__(self, seq):
        self.seq = seq


def _reqs(*seqs):
    return [_Req(s) for s in seqs]


def _entry():
    return ModelRegistry(seed=SEED).get(NET, "e")


def _inputs(n, size=4):
    return [np.zeros((1, size), dtype=np.int64) for _ in range(n)]


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor")
        with pytest.raises(ValueError):
            FaultSpec(kind="crash", start=-1)
        with pytest.raises(ValueError):
            FaultSpec(kind="crash", start=5, stop=2)
        with pytest.raises(ValueError):
            FaultSpec(kind="bitflip", rate=-1.0)
        with pytest.raises(ValueError):
            FaultSpec(kind="crash", probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec(kind="latency", delay_s=-0.1)

    def test_window_and_scope(self):
        spec = FaultSpec(kind="crash", network="a", start=3, stop=6)
        assert spec.applies_to("a") and not spec.applies_to("b")
        assert not spec.in_window(2)
        assert spec.in_window(3) and spec.in_window(5)
        assert not spec.in_window(6)
        unbounded = FaultSpec(kind="crash", start=1)
        assert unbounded.applies_to("anything")
        assert unbounded.in_window(10 ** 9)

    def test_poison_window_is_explicit_seqs(self):
        spec = FaultSpec(kind="poison", seqs=(7, 3))
        assert spec.seqs == (3, 7)
        assert spec.in_window(3) and spec.in_window(7)
        assert not spec.in_window(4)

    def test_plan_accepts_dicts_and_filters_by_network(self):
        plan = FaultPlan([{"kind": "crash", "network": "a"},
                          FaultSpec(kind="latency", network="b")])
        assert len(plan) == 2
        assert [s.kind for s in plan.for_network("a")] == ["crash"]
        assert plan.to_dict()["specs"][0]["kind"] == "crash"


class TestFlipBit16:
    def test_flip_is_involution(self):
        for value in (-32768, -1, 0, 1, 4095, 32767):
            for bit in (0, 7, 15):
                once = flip_bit16(value, bit)
                assert flip_bit16(once, bit) == value

    def test_sign_bit_flip_stays_in_int16(self):
        assert flip_bit16(32767, 15) == -1
        assert flip_bit16(0, 15) == -32768
        for value in (-32768, -12345, 0, 12345, 32767):
            for bit in range(16):
                assert -32768 <= flip_bit16(value, bit) <= 32767

    def test_bad_bit_rejected(self):
        with pytest.raises(ValueError):
            flip_bit16(0, 16)


class TestInjectorMechanics:
    def test_transient_crash_fires_once_per_seq(self):
        injector = FaultInjector([FaultSpec(kind="crash", network=NET.name,
                                            start=0, stop=10)], seed=SEED)
        entry = _entry()
        with pytest.raises(InjectedCrash):
            injector.before_execute(NET.name, entry, _reqs(1, 2),
                                    _inputs(2))
        # Retry of the same seqs passes: the fault was transient.
        injector.before_execute(NET.name, entry, _reqs(1, 2), _inputs(2))
        assert injector.counts() == {"crash": 2}

    def test_persistent_crash_refires_and_logs_once(self):
        injector = FaultInjector([FaultSpec(kind="crash", network=NET.name,
                                            stop=10, transient=False)],
                                 seed=SEED)
        entry = _entry()
        for _ in range(3):
            with pytest.raises(InjectedCrash):
                injector.before_execute(NET.name, entry, _reqs(1),
                                        _inputs(1))
        assert injector.counts() == {"crash": 1}

    def test_poison_refires_until_isolated(self):
        injector = FaultInjector([FaultSpec(kind="poison", network=NET.name,
                                            seqs=(2,))], seed=SEED)
        entry = _entry()
        with pytest.raises(InjectedCrash):
            injector.before_execute(NET.name, entry, _reqs(0, 1, 2),
                                    _inputs(3))
        with pytest.raises(InjectedCrash):
            injector.before_execute(NET.name, entry, _reqs(2), _inputs(1))
        injector.before_execute(NET.name, entry, _reqs(0, 1), _inputs(2))
        assert injector.counts() == {"poison": 1}

    def test_out_of_window_and_other_network_untouched(self):
        injector = FaultInjector([FaultSpec(kind="crash", network=NET.name,
                                            start=5, stop=6)], seed=SEED)
        entry = _entry()
        injector.before_execute(NET.name, entry, _reqs(4, 6), _inputs(2))
        injector.before_execute("other", entry, _reqs(5), _inputs(1))
        assert injector.counts() == {}

    def test_kill_raises_worker_death_once(self):
        injector = FaultInjector([FaultSpec(kind="kill", network=NET.name,
                                            start=0, stop=1)], seed=SEED)
        entry = _entry()
        with pytest.raises(InjectedWorkerDeath):
            injector.before_execute(NET.name, entry, _reqs(0), _inputs(1))
        assert not isinstance(InjectedWorkerDeath("x"), Exception)
        injector.before_execute(NET.name, entry, _reqs(0), _inputs(1))

    def test_latency_sleeps_through_injectable_clock(self):
        injector = FaultInjector([FaultSpec(kind="latency", network=NET.name,
                                            stop=10, delay_s=0.5)],
                                 seed=SEED)
        slept = []
        injector.sleep = slept.append
        entry = _entry()
        injector.before_execute(NET.name, entry, _reqs(0), _inputs(1))
        assert slept == [0.5]
        # Second attempt on the same seq does not re-stall.
        injector.before_execute(NET.name, entry, _reqs(0), _inputs(1))
        assert slept == [0.5]

    def test_corrupt_is_idempotent(self):
        injector = FaultInjector([FaultSpec(kind="corrupt", network=NET.name,
                                            stop=10)], seed=SEED)
        entry = _entry()
        x1 = np.zeros((2, 8), dtype=np.int64)
        injector.before_execute(NET.name, entry, _reqs(3), [x1])
        assert np.any(x1 != 0)
        first = x1.copy()
        injector.before_execute(NET.name, entry, _reqs(3), [x1])
        assert np.array_equal(x1, first)


class TestBitFlipsAndIntegrity:
    def test_bitflips_detected_and_repaired(self):
        registry = ModelRegistry(seed=SEED)
        entry = registry.get(NET, "e")
        pristine = [{k: v.copy() for k, v in layer.items()}
                    for layer in entry.params_raw]
        injector = FaultInjector([FaultSpec(kind="bitflip", network=NET.name,
                                            stop=50, rate=2.0)], seed=SEED)
        for seq in range(10):
            injector.before_execute(NET.name, entry, _reqs(seq), _inputs(1))
        assert injector.counts().get("bitflip", 0) >= 1
        assert registry.verify(entry)  # corruption detected
        restored = registry.repair(entry)
        assert restored == sum(len(layer) for layer in entry.params_raw)
        assert not registry.verify(entry)
        for layer, good in zip(entry.params_raw, pristine):
            for key in layer:
                assert np.array_equal(layer[key], good[key])

    def test_flipped_values_stay_in_q312_storage_range(self):
        registry = ModelRegistry(seed=SEED)
        entry = registry.get(NET, "e")
        injector = FaultInjector([FaultSpec(kind="bitflip", network=NET.name,
                                            stop=50, rate=4.0)], seed=SEED)
        for seq in range(20):
            injector.before_execute(NET.name, entry, _reqs(seq), _inputs(1))
        for layer in entry.params_raw:
            for arr in layer.values():
                assert arr.min() >= -32768 and arr.max() <= 32767


class TestDeterminism:
    PLAN = [
        FaultSpec(kind="bitflip", network=NET.name, start=2, stop=12,
                  rate=1.0),
        FaultSpec(kind="crash", network=NET.name, start=4, stop=9,
                  probability=0.7),
        FaultSpec(kind="latency", network=NET.name, start=1, stop=3,
                  delay_s=0.01),
    ]

    def _exercise(self, groupings):
        """Run the plan over seqs 0..14 batched as ``groupings``."""
        injector = FaultInjector(self.PLAN, seed=SEED)
        injector.sleep = lambda _s: None
        entry = _entry()
        for group in groupings:
            try:
                injector.before_execute(NET.name, entry, _reqs(*group),
                                        _inputs(len(group)))
            except InjectedCrash:
                # bisect-style: retry each element alone
                for seq in group:
                    try:
                        injector.before_execute(NET.name, entry, _reqs(seq),
                                                _inputs(1))
                    except InjectedCrash:
                        pass
        return injector

    def test_identical_log_regardless_of_batching(self):
        seqs = list(range(15))
        one_by_one = self._exercise([[s] for s in seqs])
        big_batches = self._exercise([seqs[0:6], seqs[6:11], seqs[11:15]])
        assert one_by_one.canonical_log() == big_batches.canonical_log()
        assert one_by_one.log_digest() == big_batches.log_digest()
        assert one_by_one.counts() == big_batches.counts()

    def test_different_seed_different_sequence(self):
        a = FaultInjector(self.PLAN, seed=1)
        b = FaultInjector(self.PLAN, seed=2)
        for injector in (a, b):
            injector.sleep = lambda _s: None
            entry = _entry()
            for seq in range(15):
                try:
                    injector.before_execute(NET.name, entry, _reqs(seq),
                                            _inputs(1))
                except InjectedCrash:
                    pass
        assert a.log_digest() != b.log_digest()
