"""Architecture fuzz: random layer stacks through the full pipeline.

Hypothesis draws arbitrary Dense/LSTM stacks (random widths, random
activations, random timestep counts); every draw must plan, assemble,
execute bit-exactly against the golden model, and match the static count
analysis — at a random optimization level.  This stresses the planner's
buffer chaining (dense->lstm handoff, lstm->lstm copies, padding) far
beyond the hand-written cases.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.kernels import NetworkProgram
from repro.nn import (DenseSpec, LstmSpec, Network, init_params,
                      quantize_params)

even = st.integers(1, 10).map(lambda k: 2 * k)
activation = st.sampled_from([None, "relu", "sig", "tanh"])


@st.composite
def network_case(draw):
    n_layers = draw(st.integers(1, 4))
    layers = []
    width = draw(even)
    for _ in range(n_layers):
        if draw(st.booleans()):
            out = draw(even)
            layers.append(DenseSpec(width, out, draw(activation)))
        else:
            out = draw(even)
            layers.append(LstmSpec(width, out))
        width = out
    timesteps = draw(st.integers(1, 3)) if any(
        isinstance(l, LstmSpec) for l in layers) else 1
    level = draw(st.sampled_from("abcdef"))
    seed = draw(st.integers(0, 10 ** 6))
    return Network("fuzz", tuple(layers), timesteps=timesteps), level, seed


class TestNetworkFuzz:
    @given(case=network_case())
    @settings(max_examples=25, deadline=None)
    def test_random_architectures_end_to_end(self, case):
        network, level, seed = case
        rng = np.random.default_rng(seed)
        params = quantize_params(init_params(network, rng))
        program = NetworkProgram(network, params, level)
        xs = [np.asarray(rng.uniform(-1, 1, network.input_size) * 4096,
                         dtype=np.int64)
              for _ in range(network.timesteps)]
        program.run_and_check(xs)
        assert program.trace == \
            program.plan.trace.scaled(network.timesteps)
