"""End-to-end cluster tests: real worker processes over real queues.

These spawn actual ``multiprocessing`` workers (spawn start method), so
they are the slowest tests in the suite — kept few and focused on what
only a process boundary can prove: shared-memory weight transport,
response-queue plumbing, process-kill failover and drain semantics.
"""

import time

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ClusterMetrics, ServingCluster
from repro.cluster.autoscaler import ScaleDecision
from repro.rrm.networks import suite
from repro.serve.engine import EngineConfig, ModelRegistry

NETWORKS = suite(4)
SEED = 2020


def _stream(n, seed=7):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        network = NETWORKS[int(rng.integers(len(NETWORKS)))]
        x = np.asarray(rng.uniform(-1, 1, (network.timesteps,
                                           network.input_size)) * 4096,
                       dtype=np.int64)
        out.append((network, x))
    return out


def _golden(stream):
    registry = ModelRegistry(seed=SEED)
    outputs = []
    for network, x in stream:
        entry = registry.get(network, "e")
        entry.reference.reset()
        outputs.append(entry.reference.forward(x))
    return outputs


@pytest.fixture(scope="module")
def cluster():
    cluster = ServingCluster(
        NETWORKS,
        ClusterConfig(n_shards=2, replicas_per_shard=1,
                      engine=EngineConfig(seed=SEED)),
        metrics=ClusterMetrics())
    cluster.start()
    yield cluster
    cluster.stop()


class TestServing:
    def test_bitexact_outputs_across_processes(self, cluster):
        stream = _stream(30)
        golden = _golden(stream)
        requests = [cluster.submit(net.name, x, timeout_s=30.0)
                    for net, x in stream]
        for request in requests:
            assert request.wait(timeout=60.0)
        assert all(r.ok for r in requests), \
            [(r.status, r.error) for r in requests if not r.ok]
        for request, want in zip(requests, golden):
            assert np.array_equal(request.output, want)

    def test_requests_routed_to_owning_shard(self, cluster):
        stream = _stream(20, seed=9)
        requests = [cluster.submit(net.name, x, timeout_s=30.0)
                    for net, x in stream]
        for request in requests:
            assert request.wait(timeout=60.0)
        for (network, _), request in zip(stream, requests):
            shard = cluster.plan.shard_of[network.name]
            assert request.worker.startswith(f"shard-{shard}/")

    def test_snapshot_reports_breakers(self, cluster):
        snapshots = cluster.snapshot_workers(wait_s=5.0)
        assert snapshots
        for stats in snapshots.values():
            assert stats is not None
            assert set(stats["breakers"].values()) == {"closed"}
            assert stats["queue_depth"] >= 0


class TestProcessKill:
    def test_kill_fails_over_and_respawns(self):
        metrics = ClusterMetrics()
        cluster = ServingCluster(
            NETWORKS,
            ClusterConfig(n_shards=1, replicas_per_shard=2,
                          engine=EngineConfig(seed=SEED)),
            metrics=metrics)
        stream = _stream(40, seed=3)
        golden = _golden(stream)
        with cluster:
            requests = []
            killed = None
            for i, (net, x) in enumerate(stream):
                requests.append(cluster.submit(net.name, x,
                                               timeout_s=60.0))
                if i == len(stream) // 2:
                    killed = cluster.kill_replica(0)
            assert killed is not None
            for request in requests:
                assert request.wait(timeout=60.0)
            # Every accepted request settles; the survivors (and any
            # redispatched in-flights) complete bit-exactly.
            done = [r for r in requests if r.ok]
            assert len(done) >= len(requests) - 5
            for request, want in zip(requests, golden):
                if request.ok:
                    assert np.array_equal(request.output, want)
            deadline = time.monotonic() + 30.0
            while (time.monotonic() < deadline
                   and cluster.live_replica_count() < 2):
                time.sleep(0.05)
            assert cluster.live_replica_count() == 2  # respawned
        totals = metrics.to_dict()["total"]
        assert totals["proc_kills"] == 1
        assert totals["proc_deaths"] == 1
        assert totals["replica_starts"] >= 3
        kinds = [e["event"] for e in cluster.events]
        assert "proc_kill" in kinds and "proc_death" in kinds


class TestScaling:
    def test_retire_drains_and_worker_reports_final(self):
        cluster = ServingCluster(
            NETWORKS,
            ClusterConfig(n_shards=1, replicas_per_shard=2,
                          engine=EngineConfig(seed=SEED)))
        with cluster:
            assert cluster.live_replica_count() == 2
            cluster._retire_one(ScaleDecision(shard=0, delta=-1,
                                              utilization=0.0,
                                              reason="test"))
            retired = next(r for r in cluster.replicas()
                           if not r.accepting)
            assert retired.final.wait(timeout=60.0)
            assert cluster.live_replica_count() == 1
            # The remaining replica still serves the whole shard.
            network, x = _stream(1, seed=5)[0]
            request = cluster.submit(network.name, x, timeout_s=30.0)
            assert request.wait(timeout=60.0) and request.ok
        finals = cluster.worker_finals()
        assert retired.name in finals
        assert "metrics" in finals[retired.name]


class TestStopSemantics:
    def test_stop_settles_everything_and_unlinks_store(self):
        cluster = ServingCluster(
            NETWORKS,
            ClusterConfig(n_shards=2, replicas_per_shard=1,
                          engine=EngineConfig(seed=SEED)))
        with cluster:
            requests = [cluster.submit(net.name, x, timeout_s=30.0)
                        for net, x in _stream(10, seed=11)]
        assert all(r.wait(timeout=0) for r in requests)
        assert cluster.router.inflight_count() == 0
        # Worker finals arrived with aggregatable metrics.
        finals = cluster.worker_finals()
        assert len(finals) == 2
        for payload in finals.values():
            assert payload["metrics"]["total"]["submitted"] >= 0
            assert payload["store_nbytes"] == cluster.store.nbytes
        # The shared segment is gone (attach by name must fail).
        if cluster.store.descriptor["mode"] == "shm":
            from multiprocessing import shared_memory
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(
                    name=cluster.store.descriptor["shm_name"])
