"""CFG construction: blocks, edges, hardware loops, edge cases."""


from repro.analysis import build_cfg, find_hw_loops
from repro.isa import assemble


def cfg_of(source):
    return build_cfg(assemble(source))


class TestBasicBlocks:
    def test_straight_line_single_block(self):
        cfg = cfg_of("""
            addi t0, x0, 1
            addi t1, t0, 2
            ebreak
        """)
        assert len(cfg.blocks) == 1
        assert cfg.blocks[0].succs == []
        assert cfg.reachable == {0}

    def test_branch_splits_blocks(self):
        cfg = cfg_of("""
            addi t0, x0, 3
        loop:
            addi t0, t0, -1
            bne t0, x0, loop
            ebreak
        """)
        assert len(cfg.blocks) == 3
        loop_block = cfg.block_at(1)
        assert sorted(loop_block.succs) == sorted([loop_block.id,
                                                   cfg.block_at(3).id])
        assert loop_block.id in cfg.blocks[0].succs

    def test_block_of_maps_every_instruction(self):
        cfg = cfg_of("""
            addi t0, x0, 3
            bne t0, x0, skip
            addi t1, x0, 1
        skip:
            ebreak
        """)
        for idx in range(len(cfg.program)):
            block = cfg.block_at(idx)
            assert block.start <= idx <= block.end


class TestEdgeCases:
    def test_program_ending_in_branch(self):
        # The final instruction is a branch: fall-through runs off the
        # program (halt), so the only successor is the taken target.
        cfg = cfg_of("""
        top:
            addi t0, t0, 1
            bne t0, t1, top
        """)
        last = cfg.block_at(len(cfg.program) - 1)
        assert last.succs == [cfg.block_at(0).id]

    def test_backward_branch_to_address_zero(self):
        cfg = cfg_of("""
        zero:
            addi t0, t0, 1
            addi t1, t1, 2
            bne t0, t1, zero
            ebreak
        """)
        entry = cfg.blocks[0]
        assert entry.start == 0
        branch_block = cfg.block_at(2)
        assert entry.id in branch_block.succs
        assert branch_block.id in entry.preds

    def test_nested_hardware_loops(self):
        cfg = cfg_of("""
            addi t0, x0, 4
            lp.setup 1, t0, outer_end
            lp.setupi 0, 3, inner_end
            addi t1, t1, 1
        inner_end:
            addi t2, t2, 1
        outer_end:
            ebreak
        """)
        assert len(cfg.loops) == 2
        outer = next(lp for lp in cfg.loops if lp.index == 1)
        inner = next(lp for lp in cfg.loops if lp.index == 0)
        assert outer.contains(inner.body_start)
        assert outer.contains(inner.body_end)
        # both containing loops found, innermost last
        both = cfg.loops_containing(inner.body_end)
        assert len(both) == 2
        inner_body = cfg.block_at(inner.body_end)
        assert inner_body.back_edge_to == cfg.block_at(
            inner.body_start).id

    def test_single_instruction_loop_body(self):
        cfg = cfg_of("""
            lp.setupi 0, 5, end
            addi t0, t0, 1
        end:
            ebreak
        """)
        (lp,) = cfg.loops
        assert lp.body_len == 1
        body = cfg.block_at(lp.body_start)
        assert body.start == body.end == lp.body_start
        assert body.back_edge_to == body.id  # loops to itself
        assert body.id in body.succs

    def test_unreachable_tail_blocks(self):
        cfg = cfg_of("""
            addi t0, x0, 1
            ebreak
            addi t1, x0, 2
            addi t2, x0, 3
        """)
        tails = cfg.unreachable_blocks
        assert len(tails) == 1
        assert tails[0].start == 2
        assert cfg.reachable == {0}

    def test_jump_over_dead_code(self):
        cfg = cfg_of("""
            j live
            addi t0, x0, 1
        live:
            ebreak
        """)
        dead = cfg.unreachable_blocks
        assert [b.start for b in dead] == [1]

    def test_empty_program(self):
        cfg = build_cfg(assemble(""))
        assert cfg.blocks == []
        assert cfg.unreachable_blocks == []


class TestHwLoops:
    def test_counted_loop_metadata(self):
        program = assemble("""
            lp.setupi 0, 7, end
            addi t0, t0, 1
            addi t1, t1, 1
        end:
            ebreak
        """)
        loops, bad = find_hw_loops(program)
        assert bad == []
        (lp,) = loops
        assert lp.counted and lp.count == 7
        assert (lp.body_start, lp.body_end) == (1, 2)

    def test_register_counted_loop_gets_zero_trip_edge(self):
        cfg = cfg_of("""
            addi t0, x0, 4
            lp.setup 0, t0, end
            addi t1, t1, 1
        end:
            ebreak
        """)
        (lp,) = cfg.loops
        assert not lp.counted
        setup_block = cfg.block_at(lp.setup_idx)
        exit_block = cfg.block_at(lp.body_end + 1)
        assert exit_block.id in setup_block.succs  # zero-trip skip

    def test_immediate_counted_loop_has_no_zero_trip_edge(self):
        cfg = cfg_of("""
            lp.setupi 0, 4, end
            addi t1, t1, 1
        end:
            ebreak
        """)
        (lp,) = cfg.loops
        setup_block = cfg.block_at(lp.setup_idx)
        exit_block = cfg.block_at(lp.body_end + 1)
        assert exit_block.id not in setup_block.succs

    def test_jalr_block_marked_indirect(self):
        cfg = cfg_of("""
            addi ra, x0, 8
            jalr x0, ra, 0
            ebreak
        """)
        block = cfg.block_at(1)
        assert block.indirect
        assert block.succs == []

    def test_render_smoke(self):
        cfg = cfg_of("""
            addi t0, x0, 1
            ebreak
        """)
        text = cfg.render()
        assert "block 0" in text and "addi" in text
