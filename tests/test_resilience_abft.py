"""ABFT column-checksum integrity: bit-exact transparency, certain
detection of accumulator corruption, and the engine's quarantine →
repair → rerun path (including injector-driven ``sdc`` faults)."""

import numpy as np
import pytest

from repro.faults import FaultInjector, FaultSpec
from repro.resilience import AbftBatchedModel, SdcDetected
from repro.resilience.abft import verify_dense_acc
from repro.serve.batched import BatchedQuantModel
from repro.serve.engine import (EngineConfig, InferenceEngine,
                                ModelRegistry, RequestStatus)
from repro.rrm.networks import suite

NETWORKS = suite(4)
BY_NAME = {net.name: net for net in NETWORKS}
REGISTRY = ModelRegistry(seed=2020)


def _params(network, level="e"):
    return REGISTRY.get(network, level).params_raw


def _batch(network, batch_size=5, seed=0):
    rng = np.random.default_rng(seed)
    floats = rng.uniform(-1.0, 1.0, (batch_size, network.input_size))
    return np.asarray(floats * 4096, dtype=np.int64)


class TestDifferential:
    @pytest.mark.parametrize("network", NETWORKS, ids=lambda n: n.name)
    def test_no_false_positives_and_bit_exact(self, network):
        """Fault-free, the checked model must be bit-identical to the
        plain one — the checksum identity is exact in int arithmetic,
        so it never fires spuriously and never perturbs outputs."""
        params = _params(network)
        plain = BatchedQuantModel(network, params)
        checked = AbftBatchedModel(network, params)
        for seed in range(3):
            x = _batch(network, seed=seed)
            assert np.array_equal(checked.infer(x), plain.infer(x))
        assert checked.sdc_detections == 0

    def test_verify_mask_is_per_row(self):
        network = NETWORKS[0]
        rng = np.random.default_rng(1)
        w = rng.integers(-2048, 2048, (8, network.input_size))
        x = rng.integers(-2048, 2048, (4, network.input_size))
        bias = rng.integers(-2048, 2048, 8)
        from repro.serve.batched import dense_acc_batch
        acc = dense_acc_batch(w, x, bias)
        assert not verify_dense_acc(w, x, bias, acc).any()
        acc[2, 3] ^= 1 << 7
        mask = verify_dense_acc(w, x, bias, acc)
        assert mask.tolist() == [False, False, True, False]


class TestDetection:
    def test_every_injected_corruption_detected(self):
        """100% detection: any single-bit flip below bit 31 of any
        accumulator element breaks the row checksum with certainty."""
        network = BY_NAME["sun2017"]
        checked = AbftBatchedModel(network, _params(network))
        x = _batch(network, batch_size=4, seed=7)
        rng = np.random.default_rng(11)
        trials = 25
        for _ in range(trials):
            row, col_draw = int(rng.integers(4)), int(rng.integers(1 << 20))
            bit = int(rng.integers(31))

            def corrupt(acc, _r=row, _c=col_draw, _b=bit):
                c = _c % acc.shape[1]
                acc[_r, c] = int(acc[_r, c]) ^ (1 << _b)

            checked.arm_sdc(corrupt)
            with pytest.raises(SdcDetected) as info:
                checked.infer(x)
            assert row in info.value.rows
        assert checked.sdc_detections >= trials

    def test_plain_model_is_silently_corrupted(self):
        """The contrast that motivates ABFT: the base model swallows the
        same corruption and returns wrong bits with DONE status."""
        network = BY_NAME["sun2017"]
        params = _params(network)
        plain = BatchedQuantModel(network, params)
        x = _batch(network, batch_size=2, seed=3)
        clean = plain.infer(x)
        plain.arm_sdc(lambda acc: acc.__setitem__((0, 0),
                                                  int(acc[0, 0]) ^ (1 << 20)))
        corrupted = plain.infer(x)
        assert not np.array_equal(clean, corrupted)


class TestEnginePath:
    def _run(self, abft, seed=2020):
        name = "sun2017"
        spec = FaultSpec(kind="sdc", network=name, start=1, stop=4)
        injector = FaultInjector([spec], seed=seed)
        engine = InferenceEngine(
            networks=NETWORKS,
            config=EngineConfig(level="e", max_batch_size=4,
                                max_linger_s=0.001, abft=abft),
            fault_injector=injector)
        network = BY_NAME[name]
        xs = [_batch(network, batch_size=1, seed=s)[0] for s in range(8)]
        entry = engine.registry.get(network, "e")
        reference = BatchedQuantModel(network, entry.params_raw)
        expected = reference.infer(np.stack(xs))
        with engine:
            requests = [engine.submit(name, x) for x in xs]
            for request in requests:
                assert request.wait(timeout=10.0)
        totals = engine.metrics.to_dict()["total"]
        return requests, expected, totals, injector

    def test_sdc_detected_repaired_rerun_bit_exact(self):
        requests, expected, totals, _ = self._run(abft=True)
        assert totals["sdc_detections"] >= 1
        assert totals["sdc_repairs"] >= 1
        assert totals["sdc_reruns"] >= 1
        # Every request completed with the *correct* bits: the rerun
        # after quarantine+repair hides the corruption from clients.
        for i, request in enumerate(requests):
            assert request.status == RequestStatus.DONE
            assert np.array_equal(request.output, expected[i])

    def test_without_abft_same_faults_corrupt_silently(self):
        requests, expected, totals, _ = self._run(abft=False)
        assert totals["sdc_detections"] == 0
        wrong = sum(1 for i, request in enumerate(requests)
                    if request.ok
                    and not np.array_equal(request.output, expected[i]))
        assert wrong >= 1

    def test_fault_log_digest_deterministic_with_sdc(self):
        """Identical seeds → identical canonical fault logs, with the
        new ``sdc`` kind present in the log."""
        _, _, _, first = self._run(abft=True)
        _, _, _, second = self._run(abft=True)
        log = first.canonical_log()
        assert log == second.canonical_log()
        assert any(event["kind"] == "sdc" for event in log)
