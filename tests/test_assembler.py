"""Assembler, program container and disassembler tests."""

import pytest

from repro.isa import (AsmError, assemble, disassemble_word, encode,
                       format_instr, reg_name, reg_num)


class TestRegisters:
    def test_abi_names(self):
        assert reg_num("zero") == 0
        assert reg_num("ra") == 1
        assert reg_num("sp") == 2
        assert reg_num("a0") == 10
        assert reg_num("t6") == 31
        assert reg_num("fp") == reg_num("s0") == 8

    def test_x_names(self):
        for i in range(32):
            assert reg_num(f"x{i}") == i
            assert reg_num(reg_name(i)) == i

    def test_errors(self):
        with pytest.raises(ValueError):
            reg_num("q7")
        with pytest.raises(ValueError):
            reg_num(32)
        with pytest.raises(ValueError):
            reg_name(-1)


class TestBasicParsing:
    def test_simple_program(self):
        prog = assemble("addi a0, x0, 5\nebreak\n")
        assert len(prog) == 2
        assert prog[0].mnemonic == "addi"
        assert prog[0].imm == 5
        assert prog[0].addr == 0
        assert prog[1].addr == 4

    def test_comments_and_blanks(self):
        prog = assemble("""
            # full comment line
            addi a0, x0, 1   # trailing
            // c++ style
            ebreak
        """)
        assert len(prog) == 2

    def test_memory_operands(self):
        prog = assemble("lw t0, -8(sp)\nsh t1, 6(a0)\n")
        assert prog[0].imm == -8
        assert prog[0].rs1 == reg_num("sp")
        assert prog[1].rs2 == reg_num("t1")

    def test_postinc_marker_required(self):
        assemble("p.lw t0, 4(a0!)")
        with pytest.raises(AsmError):
            assemble("p.lw t0, 4(a0)")
        with pytest.raises(AsmError):
            assemble("lw t0, 4(a0!)")

    def test_hex_immediates(self):
        prog = assemble("addi t0, x0, 0x7f\n")
        assert prog[0].imm == 127

    def test_operand_count_errors(self):
        with pytest.raises(AsmError):
            assemble("add a0, a1")
        with pytest.raises(AsmError):
            assemble("ebreak now")

    def test_unknown_mnemonic(self):
        with pytest.raises(ValueError):
            assemble("frobnicate a0, a1")


class TestLabels:
    def test_branch_resolution(self):
        prog = assemble("""
        start:
            addi a0, a0, 1
            bne a0, a1, start
            ebreak
        """)
        assert prog[1].imm == -4

    def test_forward_jump(self):
        prog = assemble("""
            jal x0, end
            addi a0, a0, 1
        end:
            ebreak
        """)
        assert prog[0].imm == 8
        assert prog.labels["end"] == 8

    def test_duplicate_label(self):
        with pytest.raises(AsmError):
            assemble("a:\naddi x0,x0,0\na:\nebreak")

    def test_undefined_label(self):
        with pytest.raises(AsmError):
            assemble("j nowhere")

    def test_hwloop_end_offset(self):
        prog = assemble("""
            lp.setupi 0, 4, end
            addi a0, a0, 1
            addi a1, a1, 1
        end:
            ebreak
        """)
        # end label is one past the body; imm2 points at the last body op
        assert prog[0].imm2 == 8

    def test_empty_hwloop_rejected(self):
        with pytest.raises(AsmError):
            assemble("lp.setupi 0, 4, end\nend:\nebreak")


class TestPseudoInstructions:
    def test_nop_mv_j_ret(self):
        prog = assemble("nop\nmv a0, a1\nj next\nnext:\nret\n")
        assert [i.mnemonic for i in prog] == ["addi", "addi", "jal", "jalr"]

    def test_li_small(self):
        prog = assemble("li a0, -2048\nli a1, 2047\n")
        assert len(prog) == 2
        assert prog[0].imm == -2048

    @pytest.mark.parametrize("value", [
        2048, -2049, 4096, 0x1000, 0x123456, -123456, 0x7FFFFFFF,
        -2147483648, 0xFFFFFFFF, 0x80000000, 0x12345800])
    def test_li_large_values_execute_correctly(self, value):
        from repro.core import Cpu
        prog = assemble(f"li a0, {value}\nebreak\n")
        cpu = Cpu(prog)
        cpu.run()
        assert cpu.reg(10) == value & 0xFFFFFFFF

    def test_halt_alias(self):
        prog = assemble("halt")
        assert prog[0].mnemonic == "ebreak"

    def test_call(self):
        prog = assemble("call fn\nfn:\nret\n")
        assert prog[0].mnemonic == "jal"
        assert prog[0].rd == reg_num("ra")


class TestProgramContainer:
    def test_at_and_label_at(self):
        prog = assemble("x:\naddi a0,a0,1\ny:\nebreak\n")
        assert prog.at(4).mnemonic == "ebreak"
        assert prog.label_at(0) == "x"
        assert prog.label_at(4) == "y"
        with pytest.raises(IndexError):
            prog.at(2)
        with pytest.raises(IndexError):
            prog.at(100)

    def test_encode_words(self):
        prog = assemble("addi a0, x0, 1\nebreak\n")
        words = prog.encode_words()
        assert len(words) == 2
        assert all(0 <= w <= 0xFFFFFFFF for w in words)

    def test_mnemonic_histogram(self):
        prog = assemble("addi a0,a0,1\naddi a0,a0,1\nebreak\n")
        assert prog.mnemonic_histogram() == {"addi": 2, "ebreak": 1}

    def test_disassemble_mentions_labels(self):
        prog = assemble("loop:\naddi a0,a0,1\nbne a0,a1,loop\n")
        text = prog.disassemble()
        assert "loop:" in text
        assert "addi a0, a0, 1" in text


class TestDisassembler:
    @pytest.mark.parametrize("line", [
        "add a0, a1, a2",
        "addi t0, t1, -5",
        "lw s0, 12(sp)",
        "p.lw t0, 4(a0!)",
        "p.sh t1, 2(a1!)",
        "lui a0, 100",
        "pl.tanh a1, a2",
        "pv.sdotsp.h a0, a1, a2",
    ])
    def test_format_roundtrip(self, line):
        prog = assemble(line)
        assert format_instr(prog[0]) == line

    def test_disassemble_word(self):
        prog = assemble("add a0, a1, a2")
        assert disassemble_word(encode(prog[0])) == "add a0, a1, a2"
