"""Turbo trip-count hint equivalence (the certifier integration).

``build_turbo_code`` seeds its vector-window hints with absint-proven
trip counts when available, and falls back to the learned-hint ramp
otherwise.  Hints are a pure performance heuristic: architectural
results, cycle counts and execution histograms must be bit-identical
with and without the proven seed.
"""

import numpy as np

import repro.analysis.absint as absint
from repro.kernels.runner import NetworkProgram
from repro.nn.network import init_params, quantize_params
from repro.rrm.networks import suite

_NET = next(n for n in suite() if n.name == "lee2018")


def _forward(monkeypatch, empty_hints):
    if empty_hints:
        monkeypatch.setattr(absint, "proven_trip_counts",
                            lambda program, footprint=None: {})
    params = quantize_params(
        init_params(_NET, np.random.default_rng(2020)))
    prog = NetworkProgram(_NET, params, "a", engine="turbo")
    rng = np.random.default_rng(7)
    outs = []
    for _ in range(2):
        x = np.asarray(rng.uniform(-1, 1, _NET.input_size) * 4096,
                       dtype=np.int64)
        outs.append(prog.step(x))
    monkeypatch.undo()
    return outs, prog


def test_proven_hints_are_architecturally_invisible(monkeypatch):
    outs_hint, prog_hint = _forward(monkeypatch, empty_hints=False)
    outs_cold, prog_cold = _forward(monkeypatch, empty_hints=True)

    # The hinted run really consumed certifier facts...
    assert getattr(prog_hint.program, "_absint_trips", {})
    # ...and both runs are indistinguishable in every observable way.
    for a, b in zip(outs_hint, outs_cold):
        assert np.array_equal(a, b)
    assert prog_hint.cpu.instret == prog_cold.cpu.instret
    assert prog_hint.cpu.cycles == prog_cold.cpu.cycles
    assert prog_hint.trace == prog_cold.trace
