"""RV32C compressed encodings: round-trips, boundaries, size analysis."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import Instr, assemble
from repro.isa.compressed import (analyze_program, compress, decompress)

cregs = st.integers(8, 15)
anyreg = st.integers(1, 31)


def roundtrip(instr):
    word = compress(instr)
    assert word is not None, f"{instr} should compress"
    assert 0 <= word <= 0xFFFF
    assert word & 3 != 3, "compressed words never end in 0b11"
    return decompress(word)


def assert_same(instr, twin):
    assert twin.mnemonic == instr.mnemonic
    assert (twin.rd, twin.rs1, twin.rs2, twin.imm) == \
        (instr.rd, instr.rs1, instr.rs2, instr.imm)


class TestRoundTrips:
    @given(cregs, cregs, st.integers(0, 31))
    def test_clw(self, rd, rs1, word_off):
        instr = Instr("lw", rd=rd, rs1=rs1, imm=word_off * 4)
        assert_same(instr, roundtrip(instr))

    @given(cregs, cregs, st.integers(0, 31))
    def test_csw(self, rs2, rs1, word_off):
        instr = Instr("sw", rs2=rs2, rs1=rs1, imm=word_off * 4)
        assert_same(instr, roundtrip(instr))

    @given(anyreg, st.integers(0, 63))
    def test_clwsp_cswsp(self, rd, word_off):
        lw = Instr("lw", rd=rd, rs1=2, imm=word_off * 4)
        assert_same(lw, roundtrip(lw))
        sw = Instr("sw", rs2=rd, rs1=2, imm=word_off * 4)
        assert_same(sw, roundtrip(sw))

    @given(anyreg, st.integers(-32, 31))
    def test_caddi(self, rd, imm):
        instr = Instr("addi", rd=rd, rs1=rd, imm=imm)
        assert_same(instr, roundtrip(instr))

    @given(anyreg, st.integers(-32, 31))
    def test_cli(self, rd, imm):
        instr = Instr("addi", rd=rd, rs1=0, imm=imm)
        assert_same(instr, roundtrip(instr))

    @given(cregs, st.integers(-32, 31))
    def test_candi(self, rd, imm):
        instr = Instr("andi", rd=rd, rs1=rd, imm=imm)
        assert_same(instr, roundtrip(instr))

    @given(cregs, cregs, st.sampled_from(["sub", "xor", "or", "and"]))
    def test_calu(self, rd, rs2, op):
        instr = Instr(op, rd=rd, rs1=rd, rs2=rs2)
        assert_same(instr, roundtrip(instr))

    @given(anyreg, st.integers(1, 31))
    def test_cslli(self, rd, sh):
        instr = Instr("slli", rd=rd, rs1=rd, imm=sh)
        assert_same(instr, roundtrip(instr))

    @given(cregs, st.integers(1, 31), st.sampled_from(["srli", "srai"]))
    def test_cshift(self, rd, sh, op):
        instr = Instr(op, rd=rd, rs1=rd, imm=sh)
        assert_same(instr, roundtrip(instr))

    @given(st.integers(-1024, 1023), st.sampled_from([0, 1]))
    def test_cj_cjal(self, halfoff, rd):
        instr = Instr("jal", rd=rd, imm=halfoff * 2)
        assert_same(instr, roundtrip(instr))

    @given(cregs, st.integers(-128, 127),
           st.sampled_from(["beq", "bne"]))
    def test_cbranch(self, rs1, halfoff, op):
        instr = Instr(op, rs1=rs1, rs2=0, imm=halfoff * 2)
        assert_same(instr, roundtrip(instr))

    @given(anyreg, anyreg)
    def test_cadd(self, rd, rs2):
        instr = Instr("add", rd=rd, rs1=rd, rs2=rs2)
        assert_same(instr, roundtrip(instr))

    @given(anyreg, anyreg)
    def test_cmv_from_add(self, rd, rs2):
        instr = Instr("add", rd=rd, rs1=0, rs2=rs2)
        assert_same(instr, roundtrip(instr))

    def test_cmv_from_addi_semantics(self):
        # addi rd, rs1, 0 compresses to c.mv, which canonically expands
        # to add rd, x0, rs1: textually different, semantically identical
        instr = Instr("addi", rd=10, rs1=11, imm=0)
        twin = decompress(compress(instr))
        assert twin.mnemonic == "add"
        assert (twin.rd, twin.rs1, twin.rs2) == (10, 0, 11)

    def test_jr_jalr_ebreak(self):
        assert_same(Instr("jalr", rd=0, rs1=5, imm=0),
                    roundtrip(Instr("jalr", rd=0, rs1=5, imm=0)))
        assert_same(Instr("jalr", rd=1, rs1=5, imm=0),
                    roundtrip(Instr("jalr", rd=1, rs1=5, imm=0)))
        assert decompress(compress(Instr("ebreak"))).mnemonic == "ebreak"


class TestNotCompressible:
    @pytest.mark.parametrize("instr", [
        Instr("addi", rd=5, rs1=5, imm=100),       # imm too large
        Instr("lw", rd=5, rs1=6, imm=8),           # regs outside x8-15
        Instr("lw", rd=9, rs1=10, imm=2),          # misaligned offset
        Instr("lw", rd=9, rs1=10, imm=128),        # offset too large
        Instr("sub", rd=9, rs1=10, rs2=11),        # rd != rs1
        Instr("p.mac", rd=5, rs1=6, rs2=7),        # no RVC form
        Instr("pv.sdotsp.h", rd=5, rs1=6, rs2=7),
        Instr("pl.tanh", rd=5, rs1=6),
        Instr("beq", rs1=9, rs2=10, imm=4),        # rs2 != x0
        Instr("jal", rd=0, imm=4096),              # offset too far
        Instr("mul", rd=9, rs1=9, rs2=10),
    ])
    def test_returns_none(self, instr):
        assert compress(instr) is None

    def test_decompress_rejects_32bit(self):
        with pytest.raises(ValueError):
            decompress(0x0003)


class TestAnalysis:
    def test_baseline_kernels_highly_compressible(self):
        from repro.kernels import NetworkPlan
        from repro.nn import DenseSpec, Network
        net = Network("cs", (DenseSpec(16, 24, "relu"), DenseSpec(24, 8)))
        prog_a = assemble(NetworkPlan(net, "a").text)
        prog_e = assemble(NetworkPlan(net, "e").text)
        stats_a = analyze_program(prog_a)
        stats_e = analyze_program(prog_e)
        # the generators favour t/a registers, outside RVC's x8-15
        # window, so the fraction is lower than compiler output would be
        assert stats_a.compressible_fraction > 0.25
        # the optimized kernels live in custom-encoding space
        assert stats_e.compressible_fraction < stats_a.compressible_fraction
        assert stats_a.size_rv32c_bytes < stats_a.size_rv32i_bytes
        assert stats_a.compression_ratio < 0.9

    def test_stats_arithmetic(self):
        prog = assemble("addi a0, a0, 1\np.mac a1, a2, a3\nebreak\n")
        stats = analyze_program(prog)
        assert stats.total_instrs == 3
        assert stats.compressed_instrs == 2  # addi + ebreak
        assert stats.size_rv32i_bytes == 12
        assert stats.size_rv32c_bytes == 8

    def test_empty_program(self):
        from repro.isa.program import Program
        stats = analyze_program(Program([]))
        assert stats.compressible_fraction == 0.0
        assert stats.compression_ratio == 1.0


class TestCodesizeDriver:
    def test_driver_runs_and_orders_levels(self):
        from repro.eval.codesize import compute_codesize, format_codesize
        from repro.rrm import suite
        result = compute_codesize(suite(8))
        assert result["a"]["fraction"] > result["e"]["fraction"]
        for stats in result.values():
            assert 0.5 <= stats["ratio"] <= 1.0
        text = format_codesize(result)
        assert "RV32IMC" in text
