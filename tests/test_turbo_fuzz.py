"""Differential fuzzing: turbo engine vs. the closure interpreter.

Random *legal* programs — hardware loops, post-increment loads/stores,
SPR dot-product streams, forward branches and counted branch loops — are
executed on both engines over identical memory images.  Final registers,
the full memory image, SPR state, retired instructions, and total cycles
must match bit-for-bit and cycle-for-cycle on every case.

The generator keeps every program terminating and in-bounds by
construction (counted loops only, pointer strides sized to the region),
but is otherwise free to compose shapes the turbo compiler vectorizes,
partially vectorizes, or must bail on.
"""

import numpy as np
import pytest

from repro.core import Cpu, Memory
from repro.isa import assemble

N_CASES = 220

_DATA = ["t0", "t1", "t2", "t3", "a0", "a3", "a4", "a5"]
_PTRS = ["a1", "a2", "s2", "s3"]
_CNTS = [("s4", "s5"), ("s6", "s7")]
_ALU = ["add", "sub", "xor", "and", "or",
        "div", "divu", "rem", "remu"]


class _Gen:
    def __init__(self, rng):
        self.rng = rng
        self.lines = []
        self.n_labels = 0
        self.spr_primed = [False, False]

    def label(self):
        self.n_labels += 1
        return f"L{self.n_labels}"

    def emit(self, line):
        self.lines.append(line)

    def _imm(self):
        return int(self.rng.integers(-2048, 2048))

    def _ptr_init(self, reg):
        base = 0x1000 + 8 * int(self.rng.integers(0, 128))
        self.emit(f"li {reg}, {base}")

    def _body_instr(self, ptr, allow_load=True):
        rng = self.rng
        choices = ["alu", "addi"]
        if allow_load:
            choices += ["lw", "sw", "sdot"]
            if self.spr_primed[0]:
                choices.append("spr")
        kind = rng.choice(choices)
        d = rng.choice(_DATA)
        if kind == "lw":
            self.emit(f"p.lw {d}, 4({ptr}!)")
        elif kind == "sw":
            self.emit(f"p.sw {d}, 4({ptr}!)")
        elif kind == "sdot":
            a, b = rng.choice(_DATA, size=2)
            self.emit(f"pv.sdotsp.h {d}, {a}, {b}")
        elif kind == "spr":
            src = rng.choice(_DATA)
            self.emit(f"pl.sdotsp.h.0 {d}, {ptr}, {src}")
        elif kind == "addi":
            self.emit(f"addi {d}, {d}, {self._imm()}")
        else:
            a, b = rng.choice(_DATA, size=2)
            self.emit(f"{rng.choice(_ALU)} {d}, {a}, {b}")

    def seg_hw(self):
        rng = self.rng
        ptr = rng.choice(_PTRS)
        self._ptr_init(ptr)
        if rng.random() < 0.5 and not self.spr_primed[0]:
            # Prime the SPR stream so in-loop pl.sdotsp is protocol-legal.
            self.emit(f"pl.sdotsp.h.0 x0, {ptr}, x0")
            self.spr_primed[0] = True
        count = int(rng.integers(1, 90))
        end = self.label()
        self.emit(f"lp.setupi 0, {count}, {end}")
        n_body = int(rng.integers(1, 6))
        for i in range(n_body):
            # A plain load may not end a hardware loop (core rule).
            self._body_instr(ptr, allow_load=i < n_body - 1)
        if self.lines[-1].startswith("p.lw"):
            self.emit(f"addi {rng.choice(_DATA)}, x0, 1")
        self.lines.append(f"{end}:")

    def seg_branch_loop(self):
        rng = self.rng
        cnt, bound = _CNTS[int(rng.integers(0, len(_CNTS)))]
        ptr = rng.choice(_PTRS)
        self._ptr_init(ptr)
        n = int(rng.integers(1, 100))
        self.emit(f"li {cnt}, 0")
        self.emit(f"li {bound}, {n}")
        top = self.label()
        self.lines.append(f"{top}:")
        for _ in range(int(rng.integers(1, 4))):
            self._body_instr(ptr)
        self.emit(f"addi {cnt}, {cnt}, 1")
        op = rng.choice(["bltu", "bne", "blt"])
        self.emit(f"{op} {cnt}, {bound}, {top}")

    def seg_forward_branch(self):
        rng = self.rng
        d = rng.choice(_DATA)
        skip = self.label()
        self.emit(f"andi {d}, {d}, 7")
        self.emit(f"{rng.choice(['beq', 'bne'])} {d}, x0, {skip}")
        for _ in range(int(rng.integers(1, 3))):
            self._body_instr(rng.choice(_PTRS), allow_load=False)
        self.lines.append(f"{skip}:")

    def seg_straight(self):
        rng = self.rng
        ptr = rng.choice(_PTRS)
        self._ptr_init(ptr)
        for _ in range(int(rng.integers(2, 7))):
            self._body_instr(ptr)
        if rng.random() < 0.3:
            a, b = rng.choice(_DATA, size=2)
            self.emit(f"{rng.choice(['div', 'remu'])} {a}, {a}, {b}")

    def program_text(self):
        rng = self.rng
        for reg in _DATA:
            self.emit(f"li {reg}, {int(rng.integers(0, 1 << 15))}")
        segs = [self.seg_hw, self.seg_branch_loop,
                self.seg_forward_branch, self.seg_straight]
        for _ in range(int(rng.integers(2, 6))):
            segs[int(rng.integers(0, len(segs)))]()
        self.emit("ebreak")
        return "\n".join(self.lines) + "\n"


def _execute(program, image, engine):
    memory = Memory(1 << 16)
    memory.store_halfwords(0x1000, image)
    cpu = Cpu(program, memory, engine=engine)
    cpu.run()
    return cpu, memory


@pytest.mark.parametrize("chunk", range(4))
def test_turbo_matches_interpreter(chunk):
    per_chunk = N_CASES // 4
    for case in range(chunk * per_chunk, (chunk + 1) * per_chunk):
        rng = np.random.default_rng(1000 + case)
        text = _Gen(rng).program_text()
        program = assemble(text)
        image = rng.integers(0, 1 << 16, 2048)
        ref_cpu, ref_mem = _execute(program, image, "interp")
        tur_cpu, tur_mem = _execute(program, image, "turbo")
        ctx = f"case {case}:\n{text}"
        assert tur_cpu.instret == ref_cpu.instret, ctx
        assert tur_cpu.cycles == ref_cpu.cycles, ctx
        for r in range(32):
            assert tur_cpu.reg(r) == ref_cpu.reg(r), f"x{r} {ctx}"
        assert list(tur_cpu.sprs) == list(ref_cpu.sprs), ctx
        assert tur_mem.words == ref_mem.words, ctx
