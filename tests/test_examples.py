"""Smoke tests: the example scripts must run end to end.

The power-allocation example trains for ~1 minute and is exercised by the
quantization benchmark instead; the remaining three run here.
"""

import os
import runpy


_EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def _run_example(name):
    path = os.path.join(_EXAMPLES, name)
    return runpy.run_path(path, run_name="not_main")


class TestExamples:
    def test_quickstart(self, capsys):
        module = _run_example("quickstart.py")
        module["main"]()
        out = capsys.readouterr().out
        assert "bit-identical outputs" in out
        assert "15" in out or "13" in out  # final-stage speedup digits

    def test_isa_tour(self, capsys):
        module = _run_example("isa_tour.py")
        module["main"]()
        out = capsys.readouterr().out
        assert "pl.tanh" in out
        assert "custom-opcode encodings" in out

    def test_spectrum_access(self, capsys):
        module = _run_example("spectrum_access.py")
        module["main"]()
        out = capsys.readouterr().out
        assert "success" in out
        assert "cycles" in out

    def test_power_allocation_importable(self):
        module = _run_example("power_allocation.py")
        assert callable(module["main"])
