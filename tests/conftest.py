"""Shared pytest configuration."""

def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running end-to-end validation tests")
