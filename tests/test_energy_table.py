"""Per-network energy/latency table driver."""

import pytest

from repro.eval.energy_table import compute_energy_table, format_energy_table
from repro.rrm import suite


class TestEnergyTable:
    @pytest.fixture(scope="class")
    def result(self):
        return compute_energy_table()

    def test_all_networks_present(self, result):
        assert len(result["rows"]) == 10

    def test_extended_core_always_wins(self, result):
        for row in result["rows"]:
            assert row["latency_us_e"] < row["latency_us_a"]
            assert row["energy_uj_e"] < row["energy_uj_a"]
            assert row["energy_gain"] > 4.0

    def test_big_networks_gain_most(self, result):
        gains = {row["name"]: row["energy_gain"] for row in result["rows"]}
        assert gains["ye2018"] > gains["eisen2019"]
        assert gains["ahmed2019"] > gains["naparstek2019"]

    def test_millisecond_budget(self, result):
        """The paper's framing: RRM runs in millisecond frames, and every
        network must fit comfortably on the extended core."""
        for row in result["rows"]:
            assert row["latency_us_e"] < 1000.0

    def test_energy_scales_with_macs(self, result):
        rows = sorted(result["rows"], key=lambda r: r["macs"])
        assert rows[-1]["energy_uj_e"] > rows[0]["energy_uj_e"] * 20

    def test_format(self, result):
        text = format_energy_table(result)
        assert "E gain" in text
        assert "millisecond" in text

    def test_scaled_suite_variant(self):
        result = compute_energy_table(suite(8))
        assert len(result["rows"]) == 10
