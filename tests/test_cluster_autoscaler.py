"""Autoscaler policy: watermarks, streaks, cooldown, bounds."""

from repro.cluster.autoscaler import AutoscalerConfig, AutoscalerPolicy

CFG = AutoscalerConfig(min_replicas=1, max_replicas=4,
                       high_watermark=0.75, low_watermark=0.15,
                       scale_up_ticks=2, scale_down_ticks=3,
                       cooldown_ticks=2)


def test_scale_up_after_streak():
    policy = AutoscalerPolicy(CFG)
    # capacity 10, 1 replica, 8 outstanding -> utilization 0.8
    first = policy.observe(0, replicas=1, outstanding=8, capacity=10)
    assert first.delta == 0 and "streak" in first.reason
    second = policy.observe(0, replicas=1, outstanding=8, capacity=10)
    assert second.delta == +1


def test_single_hot_tick_does_not_scale():
    policy = AutoscalerPolicy(CFG)
    policy.observe(0, 1, 9, 10)
    # Load fell back in-band: the streak resets.
    assert policy.observe(0, 1, 5, 10).delta == 0
    assert policy.observe(0, 1, 9, 10).delta == 0


def test_scale_down_slower_than_up():
    policy = AutoscalerPolicy(CFG)
    for _ in range(CFG.scale_down_ticks - 1):
        assert policy.observe(0, 2, 0, 10).delta == 0
    assert policy.observe(0, 2, 0, 10).delta == -1


def test_cooldown_freezes_shard():
    policy = AutoscalerPolicy(CFG)
    policy.observe(0, 1, 8, 10)
    assert policy.observe(0, 1, 8, 10).delta == +1
    for _ in range(CFG.cooldown_ticks):
        decision = policy.observe(0, 2, 20, 10)
        assert decision.delta == 0 and "cooldown" in decision.reason
    # Cooldown expired; hot streak builds again from zero.
    policy.observe(0, 2, 20, 10)
    assert policy.observe(0, 2, 20, 10).delta == +1


def test_bounds_respected():
    policy = AutoscalerPolicy(CFG)
    for _ in range(10):
        assert policy.observe(0, CFG.max_replicas, 100, 10).delta == 0
    policy = AutoscalerPolicy(CFG)
    for _ in range(10):
        assert policy.observe(0, CFG.min_replicas, 0, 10).delta == 0


def test_shards_tracked_independently():
    policy = AutoscalerPolicy(CFG)
    policy.observe(0, 1, 8, 10)
    # Shard 1's quiet ticks must not disturb shard 0's hot streak.
    policy.observe(1, 1, 0, 10)
    assert policy.observe(0, 1, 8, 10).delta == +1


def test_utilization_reported():
    policy = AutoscalerPolicy(CFG)
    decision = policy.observe(0, replicas=2, outstanding=5, capacity=10)
    assert decision.utilization == 0.25
