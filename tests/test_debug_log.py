"""Per-instruction execution logging (the debugging view)."""

import pytest

from repro.core import Cpu, ExecutionLimitExceeded, Memory
from repro.isa import assemble


class TestRunLogged:
    def test_log_structure(self):
        cpu = Cpu(assemble("""
            li a0, 5
            addi a0, a0, 1
            ebreak
        """))
        log = cpu.run_logged()
        assert [entry[1] for entry in log] == [0, 4, 8]
        assert log[0][0] == 0            # starts at cycle 0
        assert "addi" in log[0][2]
        assert cpu.reg(10) == 6          # architectural effects applied

    def test_log_shows_stall_cost(self):
        cpu = Cpu(assemble("""
            li a0, 0x100
            lw a1, 0(a0)
            addi a2, a1, 1
            ebreak
        """), Memory(1 << 12))
        log = cpu.run_logged()
        text = Cpu.format_log(log)
        assert "(2 cyc)" in text         # the stalled load
        lw_entry = next(e for e in log if e[2].startswith("lw"))
        addi_entry = next(e for e in log if "a2" in e[2])
        assert addi_entry[0] - lw_entry[0] == 2

    def test_log_follows_hwloop(self):
        cpu = Cpu(assemble("""
            lp.setupi 0, 3, end
            addi a0, a0, 1
        end:
            ebreak
        """))
        log = cpu.run_logged()
        addi_count = sum(1 for e in log if e[2].startswith("addi"))
        assert addi_count == 3

    def test_log_limit(self):
        cpu = Cpu(assemble("loop:\nj loop\n"))
        with pytest.raises(ExecutionLimitExceeded):
            cpu.run_logged(limit=50)

    def test_matches_plain_run(self):
        src = """
            li a0, 0x100
            li a1, 10
        loop:
            p.sw a1, 4(a0!)
            addi a1, a1, -1
            bne a1, x0, loop
            ebreak
        """
        cpu_a = Cpu(assemble(src), Memory(1 << 12))
        cpu_a.run()
        cpu_b = Cpu(assemble(src), Memory(1 << 12))
        cpu_b.run_logged()
        assert cpu_a.cycles == cpu_b.cycles
        assert [cpu_a.reg(i) for i in range(32)] == \
            [cpu_b.reg(i) for i in range(32)]
