"""The lint rule catalog: each rule on a minimal triggering program."""

from repro.analysis import Severity, lint_text


def rules_of(result, rule):
    return [f for f in result.findings if f.rule == rule]


class TestSchedulingRules:
    def test_load_use_stall_flagged(self):
        r = lint_text("""
            lw t0, 0(x0)
            addi t1, t0, 1
            ebreak
        """)
        (f,) = rules_of(r, "load-use-stall")
        assert f.severity == Severity.WARNING
        assert f.addr == 0

    def test_independent_next_instruction_clean(self):
        r = lint_text("""
            lw t0, 0(x0)
            addi t1, t2, 1
            addi t3, t0, 1
            ebreak
        """)
        assert rules_of(r, "load-use-stall") == []

    def test_postinc_load_feeding_sdotsp(self):
        r = lint_text("""
            addi t1, x0, 0x100
            p.lw t0, 4(t1!)
            pl.sdotsp.h.0 t2, t1, t0
            ebreak
        """)
        assert len(rules_of(r, "load-use-stall")) == 1

    def test_spr_reread_adjacent_same_index(self):
        r = lint_text("""
            addi a0, x0, 0x100
            pl.sdotsp.h.0 t0, a0, t1
            pl.sdotsp.h.0 t0, a0, t1
            ebreak
        """)
        (f,) = rules_of(r, "spr-reread")
        assert f.severity == Severity.ERROR
        assert not r.ok

    def test_spr_alternating_stream_clean(self):
        r = lint_text("""
            addi a0, x0, 0x100
            lp.setupi 0, 4, end
            pl.sdotsp.h.0 t0, a0, t1
            pl.sdotsp.h.1 t2, a0, t1
        end:
            ebreak
        """)
        assert rules_of(r, "spr-reread") == []
        assert rules_of(r, "spr-alternation") == []

    def test_spr_reread_across_back_edge(self):
        # A single-instruction loop body with one SPR re-reads it one
        # cycle later on every iteration via the free back edge.
        r = lint_text("""
            addi a0, x0, 0x100
            lp.setupi 0, 4, end
            pl.sdotsp.h.0 t0, a0, t1
        end:
            ebreak
        """)
        (f,) = rules_of(r, "spr-reread")
        assert "back edge" in f.message

    def test_spr_alternation_error(self):
        # Both SPRs used, but .0 appears twice non-adjacently without
        # alternating: distance-safe, yet an error — the strict protocol
        # leaves slack for rescheduling and every generated kernel
        # satisfies it.
        r = lint_text("""
            addi a0, x0, 0x100
            lp.setupi 0, 4, end
            pl.sdotsp.h.0 t0, a0, t1
            addi t3, t3, 1
            pl.sdotsp.h.0 t2, a0, t1
            pl.sdotsp.h.1 t4, a0, t1
            addi t5, t5, 1
        end:
            ebreak
        """)
        assert rules_of(r, "spr-reread") == []
        findings = rules_of(r, "spr-alternation")
        assert len(findings) >= 1
        assert all(f.severity == Severity.ERROR for f in findings)
        assert not r.ok


class TestHwLoopRules:
    def test_branch_out_of_body_is_error(self):
        r = lint_text("""
            lp.setupi 0, 4, end
            addi t0, t0, 1
            bne t0, x0, out
            addi t1, t1, 1
        end:
        out:
            ebreak
        """)
        findings = rules_of(r, "hwloop-boundary")
        assert findings and all(f.severity == Severity.ERROR
                                for f in findings)

    def test_branch_into_body_is_error(self):
        r = lint_text("""
            bne t0, x0, inside
            lp.setupi 0, 4, end
            addi t0, t0, 1
        inside:
            addi t1, t1, 1
        end:
            ebreak
        """)
        assert rules_of(r, "hwloop-boundary")

    def test_branch_within_body_clean(self):
        r = lint_text("""
            lp.setupi 0, 4, end
        top:
            addi t0, t0, 1
            bne t0, x0, top
            addi t1, t1, 1
        end:
            ebreak
        """)
        assert rules_of(r, "hwloop-boundary") == []

    def test_nested_loops_sharing_index_is_error(self):
        r = lint_text("""
            addi t0, x0, 4
            lp.setup 0, t0, outer_end
            lp.setupi 0, 3, inner_end
            addi t1, t1, 1
        inner_end:
            addi t2, t2, 1
        outer_end:
            ebreak
        """)
        assert rules_of(r, "hwloop-nesting")

    def test_properly_nested_distinct_indices_clean(self):
        r = lint_text("""
            addi t0, x0, 4
            lp.setup 1, t0, outer_end
            lp.setupi 0, 3, inner_end
            addi t1, t1, 1
        inner_end:
            addi t2, t2, 1
        outer_end:
            ebreak
        """)
        assert rules_of(r, "hwloop-nesting") == []

    def test_count_register_clobber_warns(self):
        r = lint_text("""
            addi t0, x0, 4
            lp.setup 0, t0, end
            addi t0, t0, 1
            addi t1, t1, 1
        end:
            ebreak
        """)
        (f,) = rules_of(r, "hwloop-count-clobber")
        assert f.severity == Severity.WARNING

    def test_plain_load_ending_body_is_error(self):
        r = lint_text("""
            addi t1, x0, 0x100
            lp.setupi 0, 4, end
            addi t2, t2, 1
            p.lw t3, 4(t1!)
        end:
            ebreak
        """)
        (f,) = rules_of(r, "hwloop-load-end")
        assert f.severity == Severity.ERROR
        assert not r.ok


class TestDataflowRules:
    def test_use_before_def_warns(self):
        r = lint_text("""
            add t0, t1, t2
            ebreak
        """)
        (f,) = rules_of(r, "use-before-def")
        assert f.severity == Severity.WARNING

    def test_frame_save_idiom_is_info(self):
        r = lint_text("""
            sw s0, 36(x0)
            sw ra, 32(x0)
            ebreak
        """)
        findings = rules_of(r, "use-before-def")
        assert findings
        assert all(f.severity == Severity.INFO for f in findings)

    def test_dead_write_is_info(self):
        r = lint_text("""
            addi t0, x0, 1
            addi t0, x0, 2
            sw t0, 0(x0)
            ebreak
        """)
        (f,) = rules_of(r, "dead-write")
        assert f.severity == Severity.INFO
        assert f.addr == 0

    def test_unreachable_block_warns(self):
        r = lint_text("""
            ebreak
            addi t0, x0, 1
        """)
        (f,) = rules_of(r, "unreachable")
        assert f.severity == Severity.WARNING


class TestFindingPlumbing:
    def test_findings_sorted_errors_first(self):
        r = lint_text("""
            lw t0, 0(x0)
            addi t1, t0, 1
            pl.sdotsp.h.0 t2, t1, t0
            pl.sdotsp.h.0 t2, t1, t0
            ebreak
        """)
        sevs = [f.severity for f in r.findings]
        assert sevs == sorted(sevs, key=lambda s: Severity.ORDER[s])
        assert r.findings[0].severity == Severity.ERROR

    def test_to_dict_roundtrip_fields(self):
        r = lint_text("""
            lw t0, 0(x0)
            addi t1, t0, 1
            ebreak
        """)
        d = r.to_dict()
        assert d["name"] and isinstance(d["findings"], list)
        assert {"severity", "rule", "addr", "instr", "message"} \
            <= set(d["findings"][0])

    def test_clean_program_is_ok(self):
        r = lint_text("""
            addi t0, x0, 1
            addi t1, t0, 1
            sw t1, 0(x0)
            ebreak
        """)
        assert r.ok
        assert r.errors == 0
