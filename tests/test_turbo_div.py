"""Turbo vectorization of div/rem-bearing loop bodies.

Until this change ``div``/``divu``/``rem``/``remu`` forced the turbo
compiler to reject the whole loop (scalar closures, DIV_CYCLES each).
Now they compile like any ALU op — numpy truncating division with the
RISC-V M edge cases (divide-by-zero, signed overflow) patched in — so
these tests assert *total* equivalence (registers, memory, SPRs,
instret, cycles) against the interpreter AND that the loops really
took the vector path (``vector_loops >= 1``, zero bails).
"""

import numpy as np
import pytest

from repro.core import Cpu, Memory
from repro.core.cpu import DIV_CYCLES, _DIV_OPS
from repro.core.turbo import _VOPS, _v_div, _v_divu, _v_rem, _v_remu
from repro.isa import assemble

_U = np.uint64


def _execute(text, image, engine):
    program = assemble(text)
    memory = Memory(1 << 16)
    memory.store_halfwords(0x1000, image)
    cpu = Cpu(program, memory, engine=engine)
    cpu.run()
    return cpu, memory


def _assert_equal(text, image):
    ref_cpu, ref_mem = _execute(text, image, "interp")
    tur_cpu, tur_mem = _execute(text, image, "turbo")
    assert tur_cpu.instret == ref_cpu.instret
    assert tur_cpu.cycles == ref_cpu.cycles
    for r in range(32):
        assert tur_cpu.reg(r) == ref_cpu.reg(r), f"x{r}"
    assert list(tur_cpu.sprs) == list(ref_cpu.sprs)
    assert tur_mem.words == ref_mem.words
    return tur_cpu


def _edge_image():
    """Halfword image whose word stream includes 0, -1 and 0x80000000."""
    rng = np.random.default_rng(11)
    image = rng.integers(0, 1 << 16, 2048)
    # words are little-endian halfword pairs at 0x1000 + 4k
    image[0], image[1] = 0, 0            # word 0x00000000
    image[2], image[3] = 0xFFFF, 0xFFFF  # word 0xFFFFFFFF (-1)
    image[4], image[5] = 0, 0x8000       # word 0x80000000 (INT_MIN)
    image[6], image[7] = 3, 0            # word 3
    return image


@pytest.mark.parametrize("op", sorted(_DIV_OPS))
def test_branch_loop_div_vectorized(op):
    """A 96-iteration counted loop streaming loaded operands through
    one division per iteration: bit/cycle-exact and vectorized."""
    text = f"""
        li a1, 0x1000
        li a2, 0x2000
        li s4, 0
        li s5, 96
    top:
        p.lw t1, 4(a1!)
        p.lw t2, 4(a1!)
        {op} t3, t1, t2
        p.sw t3, 4(a2!)
        addi s4, s4, 1
        bltu s4, s5, top
        ebreak
    """
    cpu = _assert_equal(text, _edge_image())
    assert cpu.turbo_stats["vector_loops"] >= 1
    assert cpu.turbo_stats["bails"] == 0


def test_hardware_loop_all_div_ops_vectorized():
    """All four M-division ops inside one hardware loop body."""
    text = """
        li a1, 0x1000
        li a2, 0x3000
        lp.setupi 0, 80, end
        p.lw t1, 4(a1!)
        p.lw t2, 4(a1!)
        div t3, t1, t2
        divu t4, t1, t2
        rem t5, t1, t2
        remu t6, t1, t2
        xor t3, t3, t4
        xor t5, t5, t6
        p.sw t3, 4(a2!)
        p.sw t5, 4(a2!)
    end:
        ebreak
    """
    cpu = _assert_equal(text, _edge_image())
    assert cpu.turbo_stats["vector_loops"] >= 1
    assert cpu.turbo_stats["bails"] == 0


def test_div_costs_div_cycles_in_vector_path():
    """The compiled loop must charge DIV_CYCLES per division, exactly
    like the interpreter's serial divider model."""
    n = 192  # n * blen must clear VEC_MIN_WORK for the vector path
    body = f"""
        li a1, 0x1000
        li s4, 0
        li s5, {n}
        li t0, 12345
        li t1, 7
    top:
        {{op}}
        addi t0, t0, 13
        addi s4, s4, 1
        bltu s4, s5, top
        ebreak
    """
    image = _edge_image()
    with_div = body.format(op="div t2, t0, t1")
    without = body.format(op="add t2, t0, t1")
    cpu_div, _ = _execute(with_div, image, "turbo")
    cpu_add, _ = _execute(without, image, "turbo")
    assert cpu_div.turbo_stats["vector_loops"] >= 1
    assert cpu_div.cycles - cpu_add.cycles == n * (DIV_CYCLES - 1)


@pytest.mark.parametrize("op", sorted(_DIV_OPS))
def test_vector_semantics_exhaustive_edges(op):
    """The numpy lambdas match the scalar ALU semantics over a dense
    edge-case cross product (zeros, +/-1, INT_MIN/MAX, random)."""
    from repro.core.cpu import ALU_OPS
    scalar = ALU_OPS[op]
    vec = {"div": _v_div, "divu": _v_divu,
           "rem": _v_rem, "remu": _v_remu}[op]
    assert _VOPS[op] is vec
    edges = [0, 1, 2, 3, 0xFFFFFFFF, 0xFFFFFFFE, 0x80000000,
             0x80000001, 0x7FFFFFFF, 5, 100, 0x12345678]
    rng = np.random.default_rng(2020)
    edges += [int(v) for v in rng.integers(0, 1 << 32, 20)]
    pairs = [(a, b) for a in edges for b in edges]
    av = np.array([a for a, _ in pairs], dtype=np.uint64)
    bv = np.array([b for _, b in pairs], dtype=np.uint64)
    got = vec(av, bv, 0)
    want = np.array([scalar(a, b, 0) for a, b in pairs],
                    dtype=np.uint64)
    mismatch = np.nonzero(got != want)[0]
    assert mismatch.size == 0, \
        [(pairs[i], int(got[i]), int(want[i])) for i in mismatch[:5]]


def test_fuzz_div_loops():
    """Randomized div/rem loop bodies, interp vs turbo, 40 cases."""
    ops = sorted(_DIV_OPS)
    for case in range(40):
        rng = np.random.default_rng(5000 + case)
        n = int(rng.integers(50, 120))
        lines = ["li a1, 0x1000", "li a2, 0x4000",
                 "li s4, 0", f"li s5, {n}",
                 f"li t0, {int(rng.integers(0, 1 << 15))}", "top:"]
        for _ in range(int(rng.integers(1, 4))):
            op = ops[int(rng.integers(0, 4))]
            lines.append("p.lw t1, 4(a1!)")
            lines.append(f"{op} t2, t1, t0")
            lines.append("p.sw t2, 4(a2!)")
        lines += ["addi s4, s4, 1",
                  "bltu s4, s5, top", "ebreak"]
        text = "\n".join(lines) + "\n"
        image = rng.integers(0, 1 << 16, 2048)
        image[:8] = _edge_image()[:8]
        _assert_equal(text, image)
