"""INT8 path: pv.sdotsp.b semantics, the pl.sdotsp.b kernel, the study."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Cpu, Memory
from repro.fixedpoint import Q3_4
from repro.isa import assemble
from repro.kernels import AsmBuilder
from repro.kernels.matvec8 import Int8MatvecJob, gen_matvec_int8, padded_row8
from repro.nn.layers import dense_fixed8

int8s = st.integers(-128, 127)


def _pack4(b0, b1, b2, b3):
    return ((b3 & 0xFF) << 24) | ((b2 & 0xFF) << 16) | ((b1 & 0xFF) << 8) \
        | (b0 & 0xFF)


class TestSdotspB:
    @given(st.lists(int8s, min_size=8, max_size=8), st.integers(-10 ** 6,
                                                                10 ** 6))
    def test_pv_sdotsp_b(self, vals, acc):
        a = _pack4(*vals[:4])
        b = _pack4(*vals[4:])
        cpu = Cpu(assemble("pv.sdotsp.b a2, a0, a1\nebreak\n"))
        cpu.set_reg(10, a)
        cpu.set_reg(11, b)
        cpu.set_reg(12, acc & 0xFFFFFFFF)
        cpu.run()
        expected = acc + sum(x * y for x, y in zip(vals[:4], vals[4:]))
        assert cpu.reg_s(12) == ((expected + 2 ** 31) % 2 ** 32) - 2 ** 31

    def test_pl_sdotsp_b_stream(self):
        rng = np.random.default_rng(0)
        w = rng.integers(-100, 100, 16)
        x = rng.integers(-100, 100, 16)
        mem = Memory(1 << 16)
        mem.store_bytes(0x1000, w)
        mem.store_bytes(0x2000, x)
        cpu = Cpu(assemble("""
            li a0, 0x1000
            li t1, 0x2000
            li a2, 0
            pl.sdotsp.b.0 x0, a0, x0
            lp.setupi 0, 4, end
            p.lw t0, 4(t1!)
            pl.sdotsp.b.0 a2, a0, t0
        end:
            ebreak
        """), mem)
        cpu.run()
        assert cpu.reg_s(12) == int(np.dot(w, x))


def run_matvec8(w, x, bias, max_tile=10):
    n_out, n_in = w.shape
    row_bytes = padded_row8(n_in)
    builder = AsmBuilder()
    gen_matvec_int8(builder, Int8MatvecJob(
        n_in=n_in, n_out=n_out, w_addr=0x4000, x_addr=0x2000,
        b_addr=0x3000, out_addr=0x3800, row_bytes=row_bytes,
        max_tile=max_tile))
    builder.emit("ebreak")
    mem = Memory(1 << 17)
    rows = np.zeros((n_out, row_bytes), dtype=np.int64)
    rows[:, :n_in] = w
    mem.store_bytes(0x4000, rows)
    xp = np.zeros(row_bytes, dtype=np.int64)
    xp[:n_in] = x
    mem.store_bytes(0x2000, xp)
    mem.store_bytes(0x3000, bias)
    cpu = Cpu(assemble(builder.text()), mem)
    iss = cpu.run()
    return mem.load_bytes(0x3800, n_out), iss, builder.trace


class TestInt8Matvec:
    @given(shape=st.tuples(st.integers(1, 30), st.integers(1, 20)),
           seed=st.integers(0, 10 ** 6))
    @settings(max_examples=12, deadline=None)
    def test_matches_golden(self, shape, seed):
        n_in, n_out = shape
        rng = np.random.default_rng(seed)
        w = rng.integers(-127, 128, (n_out, n_in))
        x = rng.integers(-127, 128, n_in)
        bias = rng.integers(-127, 128, n_out)
        out, _, _ = run_matvec8(w, x, bias)
        assert np.array_equal(out, dense_fixed8(w, x, bias))

    def test_model_equals_iss(self):
        rng = np.random.default_rng(1)
        w = rng.integers(-100, 100, (13, 18))
        x = rng.integers(-100, 100, 18)
        bias = rng.integers(-100, 100, 13)
        _, iss, model = run_matvec8(w, x, bias)
        for trace in (iss, model):
            trace.instrs.pop("ebreak", None)
            trace.cycles.pop("ebreak", None)
        assert iss == model

    def test_validation(self):
        builder = AsmBuilder()
        with pytest.raises(ValueError):
            gen_matvec_int8(builder, Int8MatvecJob(
                n_in=4, n_out=2, w_addr=0x4002, x_addr=0x2000,
                b_addr=0x3000, out_addr=0x3800, row_bytes=4))
        with pytest.raises(ValueError):
            gen_matvec_int8(builder, Int8MatvecJob(
                n_in=5, n_out=2, w_addr=0x4000, x_addr=0x2000,
                b_addr=0x3000, out_addr=0x3800, row_bytes=5))


class TestStudy:
    def test_throughput_near_2x(self):
        from repro.eval.int8_study import matvec_cycles_16_vs_8
        result = matvec_cycles_16_vs_8()
        assert 1.6 <= result["speedup"] <= 2.1

    def test_accuracy_ordering(self):
        from repro.eval.int8_study import accuracy_study
        result = accuracy_study(n_eval=15)
        # Q3.12 transparent, Q3.4 visibly worse (no retraining)
        assert abs(result["loss_q3_12_pct"]) < 0.5
        assert result["loss_q3_4_pct"] > result["loss_q3_12_pct"]

    def test_q3_4_format(self):
        assert Q3_4.total_bits == 8
        assert Q3_4.from_float(1.0) == 16
        assert Q3_4.max_value < 8.0
