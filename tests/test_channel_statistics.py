"""Statistical validation of the synthetic channel generator: the
substitution for the paper's field data must obey its own claimed model."""

import numpy as np
import pytest

from repro.rrm.analysis import (estimate_pathloss_exponent,
                                fading_ks_statistic, shadowing_sigma_db)
from repro.rrm.scenarios import InterferenceChannel

#: std-dev in dB of an Exp(1) power fade: 10/ln(10) * pi/sqrt(6)
_EXP_FADE_SIGMA_DB = 5.57


class TestPathLoss:
    @pytest.mark.parametrize("exponent", (2.0, 3.0, 3.8))
    def test_exponent_recovered(self, exponent):
        scenario = InterferenceChannel(8, pathloss_exp=exponent, seed=11)
        estimate = estimate_pathloss_exponent(scenario, n_draws=150)
        assert estimate == pytest.approx(exponent, abs=0.25)


class TestFading:
    def test_near_exponential_without_shadowing(self):
        scenario = InterferenceChannel(8, shadowing_db=1e-4, seed=1)
        assert fading_ks_statistic(scenario) < 0.08

    def test_shadowing_widens_the_distribution(self):
        shadowed = InterferenceChannel(8, shadowing_db=6.0, seed=0)
        clean = InterferenceChannel(8, shadowing_db=1e-4, seed=0)
        assert fading_ks_statistic(shadowed) > fading_ks_statistic(clean)


class TestShadowing:
    def test_combined_log_sigma(self):
        scenario = InterferenceChannel(8, shadowing_db=6.0, seed=0)
        expected = np.sqrt(6.0 ** 2 + _EXP_FADE_SIGMA_DB ** 2)
        assert shadowing_sigma_db(scenario) == pytest.approx(expected,
                                                             rel=0.15)

    def test_fading_only_log_sigma(self):
        scenario = InterferenceChannel(8, shadowing_db=1e-4, seed=1)
        assert shadowing_sigma_db(scenario) == pytest.approx(
            _EXP_FADE_SIGMA_DB, rel=0.15)
