"""Instruction semantics: ALU, multiply/divide, comparisons."""

from hypothesis import given, strategies as st

from repro.core import Cpu
from repro.isa import assemble

M32 = 0xFFFFFFFF
int32s = st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1)


def run_rr(op, a, b):
    """Execute `op a2, a0, a1` with a0=a, a1=b; returns signed a2."""
    cpu = Cpu(assemble(f"{op} a2, a0, a1\nebreak\n"))
    cpu.set_reg(10, a & M32)
    cpu.set_reg(11, b & M32)
    cpu.run()
    return cpu.reg_s(12)


def run_ri(op, a, imm):
    cpu = Cpu(assemble(f"{op} a2, a0, {imm}\nebreak\n"))
    cpu.set_reg(10, a & M32)
    cpu.run()
    return cpu.reg_s(12)


def _s32(v):
    v &= M32
    return v - ((v & 0x80000000) << 1)


class TestBasicAlu:
    @given(int32s, int32s)
    def test_add_sub(self, a, b):
        assert run_rr("add", a, b) == _s32(a + b)
        assert run_rr("sub", a, b) == _s32(a - b)

    @given(int32s, st.integers(min_value=-2048, max_value=2047))
    def test_addi(self, a, imm):
        assert run_ri("addi", a, imm) == _s32(a + imm)

    @given(int32s, int32s)
    def test_logic(self, a, b):
        assert run_rr("and", a, b) == _s32(a & b)
        assert run_rr("or", a, b) == _s32(a | b)
        assert run_rr("xor", a, b) == _s32(a ^ b)

    @given(int32s, st.integers(min_value=0, max_value=31))
    def test_shifts(self, a, sh):
        assert run_ri("slli", a, sh) == _s32(a << sh)
        assert run_ri("srli", a, sh) == _s32((a & M32) >> sh)
        assert run_ri("srai", a, sh) == _s32(_s32(a) >> sh)

    @given(int32s, int32s)
    def test_shift_register_masks_5_bits(self, a, b):
        assert run_rr("sll", a, b) == _s32(a << (b & 31))
        assert run_rr("srl", a, b) == _s32((a & M32) >> (b & 31))
        assert run_rr("sra", a, b) == _s32(_s32(a) >> (b & 31))

    @given(int32s, int32s)
    def test_set_less_than(self, a, b):
        assert run_rr("slt", a, b) == (1 if _s32(a) < _s32(b) else 0)
        assert run_rr("sltu", a, b) == (1 if (a & M32) < (b & M32) else 0)

    def test_lui_auipc(self):
        cpu = Cpu(assemble("lui a0, 5\nauipc a1, 1\nebreak\n"))
        cpu.run()
        assert cpu.reg(10) == 5 << 12
        assert cpu.reg(11) == 4 + (1 << 12)  # auipc at address 4

    def test_x0_never_written(self):
        cpu = Cpu(assemble("addi x0, x0, 5\nadd a0, x0, x0\nebreak\n"))
        cpu.run()
        assert cpu.reg(0) == 0
        assert cpu.reg(10) == 0


class TestMulDiv:
    @given(int32s, int32s)
    def test_mul_low(self, a, b):
        assert run_rr("mul", a, b) == _s32(a * b)

    @given(int32s, int32s)
    def test_mulh_variants(self, a, b):
        sa, sb = _s32(a), _s32(b)
        ua, ub = a & M32, b & M32
        assert run_rr("mulh", a, b) == _s32((sa * sb) >> 32)
        assert run_rr("mulhu", a, b) == _s32((ua * ub) >> 32)
        assert run_rr("mulhsu", a, b) == _s32((sa * ub) >> 32)

    @given(int32s, int32s)
    def test_div_rem_identity(self, a, b):
        if _s32(b) == 0:
            return
        q, r = run_rr("div", a, b), run_rr("rem", a, b)
        assert _s32(q * _s32(b) + r) == _s32(a)
        if _s32(a) != -(1 << 31) or _s32(b) != -1:
            assert abs(r) < abs(_s32(b))

    def test_div_by_zero(self):
        assert run_rr("div", 7, 0) == -1
        assert run_rr("divu", 7, 0) == -1
        assert run_rr("rem", 7, 0) == 7
        assert run_rr("remu", 7, 0) == 7

    def test_div_overflow(self):
        assert run_rr("div", -(1 << 31), -1) == -(1 << 31)
        assert run_rr("rem", -(1 << 31), -1) == 0

    def test_div_truncates_toward_zero(self):
        assert run_rr("div", -7, 2) == -3
        assert run_rr("rem", -7, 2) == -1
        assert run_rr("div", 7, -2) == -3
        assert run_rr("rem", 7, -2) == 1

    @given(st.integers(0, M32), st.integers(1, M32))
    def test_divu_remu(self, a, b):
        assert run_rr("divu", a, b) == _s32(a // b)
        assert run_rr("remu", a, b) == _s32(a % b)


class TestXpulpScalar:
    @given(int32s, int32s, int32s)
    def test_mac_accumulates(self, a, b, acc):
        cpu = Cpu(assemble("p.mac a2, a0, a1\nebreak\n"))
        cpu.set_reg(10, a & M32)
        cpu.set_reg(11, b & M32)
        cpu.set_reg(12, acc & M32)
        cpu.run()
        assert cpu.reg_s(12) == _s32(_s32(acc) + _s32(a) * _s32(b))

    @given(int32s)
    def test_abs(self, a):
        cpu = Cpu(assemble("p.abs a2, a0\nebreak\n"))
        cpu.set_reg(10, a & M32)
        cpu.run()
        assert cpu.reg_s(12) == _s32(abs(_s32(a)))

    @given(int32s, st.integers(min_value=1, max_value=31))
    def test_clip(self, a, bits):
        out = run_ri("p.clip", a, bits)
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        assert out == max(lo, min(hi, _s32(a)))

    @given(int32s)
    def test_exths(self, a):
        cpu = Cpu(assemble("p.exths a2, a0\nebreak\n"))
        cpu.set_reg(10, a & M32)
        cpu.run()
        half = a & 0xFFFF
        assert cpu.reg_s(12) == half - ((half & 0x8000) << 1)

    @given(int32s, int32s)
    def test_min_max_signed(self, a, b):
        assert run_rr("p.min", a, b) == min(_s32(a), _s32(b))
        assert run_rr("p.max", a, b) == max(_s32(a), _s32(b))

    @given(int32s, int32s)
    def test_min_max_unsigned(self, a, b):
        assert run_rr("p.minu", a, b) == _s32(min(a & M32, b & M32))
        assert run_rr("p.maxu", a, b) == _s32(max(a & M32, b & M32))

    def test_relu_idiom(self):
        # p.max rd, rs, x0 is the single-instruction ReLU
        assert run_rr("p.max", -5, 0) == 0
        assert run_rr("p.max", 5, 0) == 5
