"""Trace edge cases: scaling, merging, empty traces, table alignment."""

from repro.core.tracer import Trace


class TestScaled:
    def test_integer_factor(self):
        trace = Trace()
        trace.add("add", 3, 4)
        scaled = trace.scaled(10)
        assert scaled.instrs == {"add": 30}
        assert scaled.cycles == {"add": 40}

    def test_fractional_factor_rounds_per_key(self):
        trace = Trace()
        trace.add("add", 3, 7)
        scaled = trace.scaled(0.5)
        # Python banker's rounding: round(1.5) == 2, round(3.5) == 4.
        assert scaled.instrs == {"add": 2}
        assert scaled.cycles == {"add": 4}

    def test_half_up_and_half_even_cases(self):
        trace = Trace()
        trace.add("a", 5, 5)  # 2.5 rounds to 2 (ties-to-even)
        trace.add("b", 3, 3)  # 1.5 rounds to 2
        scaled = trace.scaled(0.5)
        assert scaled.instrs == {"a": 2, "b": 2}

    def test_original_untouched(self):
        trace = Trace()
        trace.add("add", 1, 1)
        trace.scaled(100)
        assert trace.total_instrs == 1

    def test_zero_factor_zeroes_everything(self):
        trace = Trace()
        trace.add("add", 9, 9)
        scaled = trace.scaled(0)
        assert scaled.total_instrs == 0
        assert scaled.total_cycles == 0
        # Equality ignores zero-count keys: a zeroed trace == empty.
        assert scaled == Trace()


class TestMerge:
    def test_disjoint_keys(self):
        a = Trace()
        a.add("add", 1, 1)
        b = Trace()
        b.add("lw", 2, 3)
        a.merge(b)
        assert a.instrs == {"add": 1, "lw": 2}
        assert a.cycles == {"add": 1, "lw": 3}
        assert a.total_instrs == 3
        assert a.total_cycles == 4

    def test_merge_returns_self_for_chaining(self):
        a, b, c = Trace(), Trace(), Trace()
        b.add("x", 1, 1)
        c.add("y", 1, 1)
        assert a.merge(b).merge(c) is a
        assert a.total_instrs == 2

    def test_merge_into_empty_equals_source(self):
        src = Trace()
        src.add("add", 4, 5)
        assert Trace().merge(src) == src

    def test_merge_does_not_mutate_other(self):
        a = Trace()
        a.add("add", 1, 1)
        b = Trace()
        b.add("add", 2, 2)
        a.merge(b)
        assert b.instrs == {"add": 2}


class TestEmptyTrace:
    def test_stall_summary_empty(self):
        assert Trace().stall_summary() == {}

    def test_totals_zero(self):
        trace = Trace()
        assert trace.total_instrs == 0
        assert trace.total_cycles == 0

    def test_top_and_table_on_empty(self):
        trace = Trace()
        assert trace.top() == []
        table = trace.table()
        assert "total" in table
        assert "0.0" in table

    def test_stall_summary_drops_zero_extras(self):
        trace = Trace()
        trace.add("add", 5, 5)   # no stalls
        trace.add("lw", 2, 4)    # 2 extra cycles
        assert trace.stall_summary() == {"lw": 2}


class TestTableAlignment:
    def test_long_mnemonics_keep_columns_aligned(self):
        trace = Trace()
        trace.add("pl.sdotsp.h.0.verylong", 10, 20)
        trace.add("add", 5, 5)
        lines = trace.table(top_n=6).splitlines()
        # One stretched name column: every row has identical length, so
        # the right-aligned number columns line up under the header.
        assert len({len(line) for line in lines}) == 1
        assert lines[0].startswith("Instr.")
        assert lines[0].endswith("instrs")

    def test_short_names_keep_paper_width(self):
        trace = Trace()
        trace.add("add", 1, 1)
        lines = trace.table().splitlines()
        assert all(len(line) == 36 for line in lines)

    def test_other_row_aggregates_beyond_top_n(self):
        trace = Trace()
        for i in range(8):
            trace.add(f"op{i}", 1, 10 - i)
        table = trace.table(top_n=3)
        assert "oth." in table
        # Rows beyond the top 3 sum into 'oth.': 7+6+5+4+3 = 25 cycles.
        oth = next(line for line in table.splitlines()
                   if line.startswith("oth."))
        assert "25.0" in oth
