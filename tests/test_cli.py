"""Command-line interface."""

import os


from repro.cli import main


class TestCliDrivers:
    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "pl.sdotsp" in capsys.readouterr().out

    def test_codesize(self, capsys):
        assert main(["codesize"]) == 0
        assert "RV32IMC" in capsys.readouterr().out


class TestCliRun:
    def test_run_assembly_file(self, tmp_path, capsys):
        source = tmp_path / "prog.s"
        source.write_text("""
            li a0, 7
            li a1, 6
            mul a2, a0, a1
            ebreak
        """)
        assert main(["run", str(source)]) == 0
        out = capsys.readouterr().out
        assert "a2=0000002a" in out
        assert "cycles" in out

    def test_run_with_extensions(self, tmp_path, capsys):
        source = tmp_path / "prog.s"
        source.write_text("""
            li a0, 2048
            pl.tanh a1, a0
            ebreak
        """)
        assert main(["run", str(source)]) == 0
        assert "a1=00000768" in capsys.readouterr().out


class TestCliSuite:
    def test_suite_single_level(self, capsys):
        assert main(["suite", "--level", "e", "--scale", "8"]) == 0
        out = capsys.readouterr().out
        assert "challita2017" in out
        assert "TOTAL" in out

    def test_suite_no_check(self, capsys):
        assert main(["suite", "--level", "b", "--scale", "8",
                     "--no-check"]) == 0
        assert "checking off" in capsys.readouterr().out


class TestCliAll:
    def test_all_writes_artifacts(self, tmp_path, capsys):
        # run only via the 'all' machinery but into a tmp dir; this is the
        # slowest CLI test (it trains the quantization-study MLP)
        assert main(["all", "--out", str(tmp_path)]) == 0
        written = sorted(os.listdir(tmp_path))
        assert "table1.txt" in written
        assert "int8.txt" in written
        assert "isa-ref.txt" in written
        from repro.cli import _DRIVERS
        assert len(written) == len(_DRIVERS)


class TestShippedAssemblyDemo:
    def test_dotprod_example(self, capsys):
        import os
        path = os.path.join(os.path.dirname(__file__), "..", "examples",
                            "dotprod.s")
        assert main(["run", path]) == 0
        out = capsys.readouterr().out
        assert "a2=fffff700" in out      # the Q3.12 dot product result
        assert "a7=0000000f" in out      # self-measured cycles via mcycle
