"""Graceful shutdown: signal-to-event mapping, partial bench accounting."""

import signal
import threading

import numpy as np

from repro.rrm.networks import suite
from repro.serve.loadgen import LoadGenerator, make_request_stream
from repro.serve.shutdown import GracefulShutdown

NETWORKS = suite(4)


class TestGracefulShutdown:
    def test_first_signal_sets_event_and_keeps_running(self):
        with GracefulShutdown() as stop:
            assert not stop.triggered
            signal.raise_signal(signal.SIGTERM)  # must NOT kill pytest
            assert stop.triggered
            assert stop.signal_name == "SIGTERM"
        assert stop.event.is_set()

    def test_handlers_restored_on_exit(self):
        before = {sig: signal.getsignal(sig)
                  for sig in GracefulShutdown.SIGNALS}
        with GracefulShutdown():
            changed = {sig: signal.getsignal(sig)
                       for sig in GracefulShutdown.SIGNALS}
            assert changed != before
        after = {sig: signal.getsignal(sig)
                 for sig in GracefulShutdown.SIGNALS}
        assert after == before

    def test_degrades_to_noop_off_main_thread(self):
        results = {}

        def body():
            with GracefulShutdown() as stop:
                results["installed"] = stop._installed
                results["event_ok"] = not stop.triggered

        thread = threading.Thread(target=body)
        thread.start()
        thread.join()
        assert results == {"installed": False, "event_ok": True}

    def test_manual_event_set_still_works_without_signals(self):
        stop = GracefulShutdown()
        stop.event.set()  # e.g. a supervising thread pulls the plug
        assert stop.triggered
        assert stop.signal_name is None


class _SlowEngine:
    """Settles instantly but lets arrival pacing dominate the run."""

    class _Request:
        status = "done"
        ok = True

        def wait(self, timeout=None):
            return True

    def __init__(self):
        self.submitted = 0

    def submit(self, name, x_raw, timeout_s=None):
        self.submitted += 1
        return self._Request()


class TestPartialBench:
    def test_stop_event_interrupts_submission_with_accounting(self):
        engine = _SlowEngine()
        stop = threading.Event()
        generator = LoadGenerator(engine, rate_rps=50.0, seed=1,
                                  stop_event=stop)
        stream = make_request_stream(NETWORKS, 100)

        def pull_plug():
            while engine.submitted < 5:
                pass
            stop.set()

        plug = threading.Thread(target=pull_plug)
        plug.start()
        summary = generator.run(stream)
        plug.join()
        assert summary["interrupted"] is True
        # Partial but valid: whatever was submitted is fully accounted.
        assert 5 <= summary["submitted"] < 100
        assert summary["completed"] == summary["submitted"]

    def test_no_stop_event_runs_to_completion(self):
        engine = _SlowEngine()
        generator = LoadGenerator(engine, rate_rps=100_000.0, seed=1)
        summary = generator.run(make_request_stream(NETWORKS, 25))
        assert summary["interrupted"] is False
        assert summary["submitted"] == 25

    def test_preset_stop_event_submits_nothing(self):
        stop = threading.Event()
        stop.set()
        engine = _SlowEngine()
        generator = LoadGenerator(engine, rate_rps=100.0,
                                  stop_event=stop)
        summary = generator.run(make_request_stream(NETWORKS, 10))
        assert summary["interrupted"] is True
        assert summary["submitted"] == 0
        assert np.isfinite(summary["elapsed_s"])
