"""Energy/power/area model tests."""

import pytest

from repro.core.tracer import Trace
from repro.energy import (AREA_BASE_KGE, AREA_EXT_KGE, AREA_OVERHEAD_KGE,
                          EnergyModel, FREQ_HZ, VOLTAGE)


def _trace(**cycles):
    t = Trace()
    for name, c in cycles.items():
        t.add(name.replace("_", "."), c, c)
    return t


def _suite_like_traces():
    baseline = Trace()
    baseline.add("addi", 2500, 2500)
    baseline.add("lh", 2400, 2400)
    baseline.add("bltu", 1200, 2400)
    baseline.add("lw", 1200, 1200)
    baseline.add("sw", 1200, 1200)
    baseline.add("mac", 1200, 1200)
    extended = Trace()
    extended.add("pl.sdot", 620, 620)
    extended.add("lw!", 70, 70)
    extended.add("sw!", 15, 15)
    extended.add("tanh,sig", 1, 1)
    extended.add("addi", 30, 30)
    return baseline, extended


class TestConstants:
    def test_area_accounting(self):
        assert AREA_OVERHEAD_KGE == pytest.approx(2.3)
        assert AREA_EXT_KGE == AREA_BASE_KGE + AREA_OVERHEAD_KGE
        assert AREA_OVERHEAD_KGE / AREA_BASE_KGE == pytest.approx(
            0.034, abs=0.001)

    def test_operating_point(self):
        assert FREQ_HZ == 380e6
        assert VOLTAGE == 0.65


class TestCalibration:
    def test_calibration_points_reproduced(self):
        base, ext = _suite_like_traces()
        model = EnergyModel(base, ext)
        assert model.power_mw(base) == pytest.approx(1.73)
        assert model.power_mw(ext) == pytest.approx(2.61)

    def test_identical_profiles_rejected(self):
        base, _ = _suite_like_traces()
        with pytest.raises(ValueError):
            EnergyModel(base, base)

    def test_empty_trace_rejected(self):
        base, ext = _suite_like_traces()
        model = EnergyModel(base, ext)
        with pytest.raises(ValueError):
            model.power_mw(Trace())

    def test_power_increases_with_compute_density(self):
        base, ext = _suite_like_traces()
        model = EnergyModel(base, ext)
        low = _trace(addi=100)
        high = _trace(mac=100)
        assert model.power_mw(high) > model.power_mw(low)


class TestReports:
    def test_report_fields(self):
        base, ext = _suite_like_traces()
        model = EnergyModel(base, ext)
        rep = model.report("e", ext, macs=1_240_000)
        assert rep.cycles == ext.total_cycles
        assert rep.mmacs == pytest.approx(
            1_240_000 / ext.total_cycles * 380)
        assert rep.gmacs_per_w == pytest.approx(rep.mmacs / rep.power_mw)
        assert rep.macs_per_cycle > 1.5

    def test_breakdown_sums_to_power(self):
        base, ext = _suite_like_traces()
        model = EnergyModel(base, ext)
        breakdown = model.breakdown_mw(ext)
        assert sum(breakdown.values()) == pytest.approx(
            model.power_mw(ext))

    def test_derived_gains_match_paper_band(self):
        """On the real suite the derived numbers must land in the paper's
        neighbourhood: ~15x speedup, ~10x efficiency, >500 MMAC/s."""
        from repro.eval.section4 import compute_section4
        result = compute_section4()
        assert 12.0 <= result["speedup"] <= 16.5
        assert 8.0 <= result["efficiency_gain"] <= 11.5
        assert 500 <= result["ext"].mmacs <= 700
        assert 180 <= result["ext"].gmacs_per_w <= 260
