"""Unified metrics registry: families, exposition, empty-histogram guards."""

import json

import pytest

from repro.obs.metrics import (Counter, CounterFamily, Gauge, GaugeFamily,
                               HistogramFamily, LatencyHistogram,
                               MetricsRegistry)


class TestPrimitives:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_high_water(self):
        g = Gauge()
        g.set(7)
        g.set(3)
        assert g.value == 3
        assert g.max == 7

    def test_histogram_percentiles(self):
        h = LatencyHistogram()
        for ms in range(1, 101):
            h.record(ms / 1e3)
        assert h.count == 100
        assert abs(h.mean - 0.0505) < 1e-9
        p50 = h.percentile(0.50)
        # Log buckets: <=19% relative error per bucket.
        assert 0.04 <= p50 <= 0.06
        assert h.percentile(1.0) == h.summary()["max_s"] == 0.1

    def test_histogram_sum_property(self):
        h = LatencyHistogram()
        h.record(0.25)
        h.record(0.75)
        assert h.sum == pytest.approx(1.0)


class TestEmptyHistogramGuards:
    """The empty-histogram bugfix: quantiles are None, never garbage."""

    def test_percentile_none_when_empty(self):
        h = LatencyHistogram()
        assert h.percentile(0.5) is None
        assert h.percentile(0.99) is None

    def test_summary_none_fields_when_empty(self):
        summary = LatencyHistogram().summary()
        assert summary["count"] == 0
        for key in ("mean_s", "min_s", "max_s", "p50_s", "p95_s", "p99_s"):
            assert summary[key] is None

    def test_render_table_dashes_for_idle_network(self):
        # A bench result where one network received zero traffic must
        # render '-' cells instead of crashing on None * 1e3.
        from repro.serve.loadgen import render_table
        latency_live = {"count": 2, "mean_s": 0.01, "min_s": 0.01,
                        "max_s": 0.01, "p50_s": 0.01, "p95_s": 0.01,
                        "p99_s": 0.01}
        latency_idle = LatencyHistogram().summary()

        def net(latency, completed):
            return {"completed": completed, "rejected_timeout": 0,
                    "rejected_capacity": 0, "sim_cycles": 0,
                    "latency": latency}

        result = {
            "config": {"level": "e", "max_batch_size": 8,
                       "max_linger_s": 0.002},
            "metrics": {"per_network": {"busy": net(latency_live, 2),
                                        "idle": net(latency_idle, 0)},
                        "total": {"latency": latency_live}},
            "completed": 2, "submitted": 2,
            "sim_cycles_per_request": 0,
            "offered_rate_rps": 1.0,
            "baseline_sequential": {"throughput_rps": 1.0},
            "achieved_throughput_rps": 1.0,
            "speedup_vs_sequential": 1.0,
            "mean_batch_size": 1.0,
        }
        table = render_table(result)
        idle_row = next(line for line in table.splitlines()
                        if line.startswith("idle"))
        assert idle_row.count("-") >= 3
        assert "None" not in table


class TestFamilies:
    def test_counter_family_labels(self):
        fam = CounterFamily("f_total", "help", ("kind",))
        fam.inc(kind="a")
        fam.inc(2, kind="b")
        fam.inc(kind="a")
        assert fam.labels(kind="a").value == 2
        assert fam.samples() == [({"kind": "a"}, 2), ({"kind": "b"}, 2)]

    def test_label_schema_enforced(self):
        fam = CounterFamily("f_total", "", ("kind",))
        with pytest.raises(ValueError):
            fam.labels(wrong="x")
        with pytest.raises(ValueError):
            fam.labels()

    def test_unlabeled_family(self):
        fam = GaugeFamily("g", "")
        fam.set(9)
        assert fam.samples() == [({}, 9)]

    def test_histogram_family_summary_samples(self):
        fam = HistogramFamily("h_seconds", "", ("net",))
        fam.record(0.5, net="x")
        samples = fam.samples()
        quantiles = [s for s in samples if "quantile" in s[0]]
        assert len(quantiles) == 3
        assert ({"net": "x"}, 0.5, "_sum") in samples
        assert ({"net": "x"}, 1, "_count") in samples

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(ValueError):
            CounterFamily("9bad", "")
        with pytest.raises(ValueError):
            CounterFamily("has space", "")


class TestRegistry:
    def test_idempotent_registration(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "help", ("k",))
        b = reg.counter("x_total", "help", ("k",))
        assert a is b

    def test_conflicting_registration_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "", ("k",))
        with pytest.raises(ValueError):
            reg.gauge("x_total", "", ("k",))
        with pytest.raises(ValueError):
            reg.counter("x_total", "", ("other",))

    def test_collector_round_trip(self):
        reg = MetricsRegistry()

        @reg.register_collector
        def collect():
            return [("c_total", "counter", "h", [({"k": "v"}, 3)])]

        rows = reg.collect()
        assert ("c_total", "counter", "h", [({"k": "v"}, 3)]) in rows
        reg.unregister_collector(collect)
        assert reg.collect() == []

    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        fam = reg.counter("req_total", "Requests.", ("net",))
        fam.inc(5, net="sun2017")
        reg.gauge("depth", "Queue depth.").set(2)
        text = reg.prometheus_text()
        assert "# HELP req_total Requests." in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{net="sun2017"} 5' in text
        assert "# TYPE depth gauge" in text
        assert "depth 2" in text
        assert text.endswith("\n")

    def test_prometheus_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("e_total", "", ("k",)).inc(k='a"b\nc\\d')
        text = reg.prometheus_text()
        assert r'k="a\"b\nc\\d"' in text

    def test_summary_exposition(self):
        reg = MetricsRegistry()
        reg.histogram("lat_seconds", "", ("net",)).record(0.1, net="x")
        text = reg.prometheus_text()
        assert "# TYPE lat_seconds summary" in text
        assert 'lat_seconds{net="x",quantile="0.5"}' in text
        assert 'lat_seconds_sum{net="x"}' in text
        assert 'lat_seconds_count{net="x"} 1' in text

    def test_to_dict_is_json_ready(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "").inc(2)
        json.dumps(reg.to_dict())


class TestLabelEscapingRoundTrip:
    """escape_label_value must invert exactly via unescape_label_value."""

    CASES = (
        "plain",
        "shard-0/replica-1",          # cluster worker ids: '/' verbatim
        'quote " inside',
        "back\\slash",
        "new\nline",
        "\\n",                         # literal backslash-n, NOT newline
        '\\"',                         # literal backslash-quote
        "mix \\ of \" all\n three \\\\",
        "",
        "trailing backslash \\",
    )

    def test_round_trip_exact(self):
        from repro.obs.metrics import (escape_label_value,
                                       unescape_label_value)
        for value in self.CASES:
            escaped = escape_label_value(value)
            assert "\n" not in escaped  # exposition lines stay one-line
            assert unescape_label_value(escaped) == value

    def test_escape_order_backslash_first(self):
        # If '"' were escaped before '\\', the backslash introduced by
        # the quote escape would be doubled and the round trip broken.
        from repro.obs.metrics import (escape_label_value,
                                       unescape_label_value)
        assert escape_label_value('"') == r'\"'
        assert unescape_label_value(r'\\n') == "\\n"
        assert unescape_label_value(r'\n') == "\n"

    def test_worker_label_survives_exposition(self):
        from repro.obs.metrics import escape_label_value
        reg = MetricsRegistry()
        fam = reg.counter("w_total", "", ("worker",))
        fam.inc(worker="shard-0/replica-1")
        text = reg.prometheus_text()
        assert 'w_total{worker="shard-0/replica-1"} 1' in text
        assert escape_label_value("shard-0/replica-1") == \
            "shard-0/replica-1"

    def test_help_text_escaping(self):
        reg = MetricsRegistry()
        reg.counter("h_total", "line one\nline \\ two").inc()
        text = reg.prometheus_text()
        assert r"# HELP h_total line one\nline \\ two" in text


class TestServeMetricsBridge:
    def test_serve_metrics_register_and_expose(self):
        from repro.serve.metrics import ServeMetrics
        reg = MetricsRegistry()
        metrics = ServeMetrics().register(reg)
        metrics.on_submit("sun2017")
        metrics.on_batch("sun2017", 2, [0.01, 0.02], 1000)
        metrics.on_fault("sun2017", "bitflip")
        text = reg.prometheus_text()
        assert 'serve_submitted_total{network="sun2017"} 1' in text
        assert 'serve_completed_total{network="sun2017"} 2' in text
        assert 'serve_faults_injected_by_kind_total{kind="bitflip"} 1' \
            in text
        assert 'serve_batches_by_size_total{size="2"} 1' in text
        assert 'serve_request_latency_seconds_count{network="sun2017"} 2' \
            in text

    def test_serve_to_dict_shape_unchanged(self):
        from repro.serve.metrics import ServeMetrics
        metrics = ServeMetrics()
        metrics.on_batch("x", 1, [0.01], 500)
        snap = metrics.to_dict()
        assert snap["total"]["completed"] == 1
        assert snap["total"]["sim_cycles"] == 500
        assert snap["total"]["latency"]["count"] == 1
        assert snap["batch_size_distribution"] == {"1": 1}

    def test_turbo_counters_on_global_registry(self):
        from repro.core import Cpu, Memory
        from repro.isa import assemble
        from repro.obs.metrics import REGISTRY
        fam = REGISTRY.counter(
            "iss_turbo_events_total",
            "Turbo-engine analysis, plan-cache and runtime-bail events.",
            ("event",))
        def counts():
            return {s[0]["event"]: s[1] for s in fam.samples()}

        before = counts()
        source = """
            li x1, 0
            li x2, 400
        loop:
            addi x1, x1, 1
            bne x1, x2, loop
            ebreak
        """
        program = assemble(source)
        cpu = Cpu(program, Memory(1 << 16), engine="turbo")
        cpu.run()
        after = counts()
        compiled = sum(v for k, v in after.items()
                       if k.startswith("compile_"))
        compiled_before = sum(v for k, v in before.items()
                              if k.startswith("compile_"))
        assert compiled > compiled_before
        # Same program object again: the analysis cache must hit.
        hits_before = after.get("cache_hit", 0)
        Cpu(program, Memory(1 << 16), engine="turbo").run()
        assert counts().get("cache_hit", 0) == hits_before + 1
