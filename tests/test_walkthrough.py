"""Kernel walkthrough generator and its committed artifact."""

import os


from repro.kernels.walkthrough import format_walkthrough, \
    walkthrough_sections

_DOC = os.path.join(os.path.dirname(__file__), "..", "docs", "KERNELS.md")


class TestWalkthrough:
    def test_covers_all_levels(self):
        keys = [s[0] for s in walkthrough_sections()]
        assert keys == list("abcdef")

    def test_costs_improve_monotonically(self):
        cycles = {s[0]: s[5] for s in walkthrough_sections()}
        assert cycles["a"] > cycles["b"] > cycles["c"] > cycles["d"] \
            > cycles["e"] > cycles["f"]

    def test_listings_show_the_signature_instructions(self):
        sections = {s[0]: s[3] for s in walkthrough_sections()}
        assert "p.mac" in sections["a"]
        assert "pv.sdotsp.h" in sections["b"]
        assert "lp.setupi" in sections["b"]
        assert "pl.sdotsp.h.0" in sections["d"]
        assert sections["f"].count("a0") > 10  # single stream pointer

    def test_committed_doc_in_sync(self):
        with open(_DOC) as handle:
            committed = handle.read().rstrip("\n")
        assert committed == format_walkthrough().rstrip("\n"), \
            "regenerate with: python -m repro.kernels.walkthrough " \
            "> docs/KERNELS.md"
