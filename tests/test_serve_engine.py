"""Inference engine behaviour: batching, deadlines, shedding, metrics."""

import numpy as np
import pytest

from repro.nn.network import QuantModel
from repro.rrm.networks import suite
from repro.rrm.suite import network_trace, plan_for
from repro.serve.engine import (EngineConfig, InferenceEngine, ModelRegistry,
                                RequestStatus)
from repro.serve.metrics import Counter, Gauge, LatencyHistogram

NETWORKS = suite(4)
BY_NAME = {net.name: net for net in NETWORKS}


def _input(network, seed=0):
    rng = np.random.default_rng(seed)
    floats = rng.uniform(-1.0, 1.0, network.input_size)
    return np.asarray(floats * 4096, dtype=np.int64)


def _engine(**overrides):
    defaults = dict(level="e", max_batch_size=8, max_linger_s=0.001)
    defaults.update(overrides)
    return InferenceEngine(networks=NETWORKS,
                           config=EngineConfig(**defaults))


class TestBatching:
    def test_pre_start_submissions_form_one_batch(self):
        engine = _engine()
        name = "wang2018"
        requests = [engine.submit(name, _input(BY_NAME[name], i))
                    for i in range(5)]
        with engine:
            for request in requests:
                assert request.wait(timeout=5.0)
        assert all(r.ok for r in requests)
        # All five were queued before the worker ran, so they must have
        # been served as a single batch of 5.
        assert {r.batch_size for r in requests} == {5}
        assert engine.metrics.batch_sizes == {5: 1}

    def test_batch_capped_at_max_batch_size(self):
        engine = _engine(max_batch_size=8)
        name = "eisen2019"
        requests = [engine.submit(name, _input(BY_NAME[name], i))
                    for i in range(20)]
        with engine:
            for request in requests:
                assert request.wait(timeout=5.0)
        sizes = sorted(r.batch_size for r in requests)
        assert max(sizes) <= 8
        assert sum(engine.metrics.batch_sizes.values()) >= 3  # 8+8+4
        assert engine.metrics.network(name).completed.value == 20

    def test_results_bit_exact_vs_reference(self):
        engine = _engine()
        name = "sun2017"
        network = BY_NAME[name]
        xs = [_input(network, seed) for seed in range(6)]
        requests = [engine.submit(name, x) for x in xs]
        with engine:
            outputs = [r.result(timeout=5.0) for r in requests]
        entry = engine.registry.get(network, "e")
        for x, out in zip(xs, outputs):
            reference = QuantModel(network, entry.params_raw)
            expected = reference.forward(
                np.repeat(x[None, :], network.timesteps, axis=0))
            assert np.array_equal(out, expected)

    def test_pressure_skips_linger(self):
        # With pressure_depth=0 every dispatch skips the linger; the
        # backlog must still fully drain.
        engine = _engine(pressure_depth=0, max_linger_s=0.5)
        name = "naparstek2019"
        requests = [engine.submit(name, _input(BY_NAME[name], i))
                    for i in range(10)]
        with engine:
            for request in requests:
                assert request.wait(timeout=5.0)
        assert all(r.ok for r in requests)


class TestDeadlinesAndShedding:
    def test_expired_deadline_rejected_not_served(self):
        engine = _engine()
        name = "yu2017"
        request = engine.submit(name, _input(BY_NAME[name]), timeout_s=0.0)
        with engine:
            assert request.wait(timeout=5.0)
        assert request.status == RequestStatus.REJECTED_TIMEOUT
        assert request.output is None
        with pytest.raises(RuntimeError, match="rejected_timeout"):
            request.result(timeout=1.0)
        assert engine.metrics.total.rejected_timeout.value == 1
        assert engine.metrics.network(name).rejected_timeout.value == 1

    def test_queue_overflow_sheds_capacity(self):
        engine = _engine(queue_capacity=2)
        name = "lee2018"
        requests = [engine.submit(name, _input(BY_NAME[name], i))
                    for i in range(4)]
        shed = [r for r in requests
                if r.status == RequestStatus.REJECTED_CAPACITY]
        assert len(shed) == 2
        assert all(r._done.is_set() for r in shed)
        assert engine.metrics.total.rejected_capacity.value == 2
        with engine:
            for request in requests:
                assert request.wait(timeout=5.0)
        assert sum(1 for r in requests if r.ok) == 2

    def test_unknown_network_raises(self):
        engine = _engine()
        with pytest.raises(KeyError, match="unknown network"):
            engine.submit("resnet50", np.zeros(4, dtype=np.int64))

    def test_bad_input_fails_request_not_worker(self):
        engine = _engine()
        name = "wang2018"
        network = BY_NAME[name]
        bad = engine.submit(name, np.zeros(3, dtype=np.int64))
        with engine:
            assert bad.wait(timeout=5.0)
            assert bad.status == RequestStatus.FAILED
            assert "input shape" in bad.error
            # The worker survives and keeps serving good requests.
            good = engine.submit(name, _input(network))
            assert good.wait(timeout=5.0)
            assert good.ok
        assert engine.metrics.network(name).failed.value == 1


class TestMetrics:
    def test_counts_and_sim_cycles(self):
        engine = _engine()
        name = "challita2017"
        network = BY_NAME[name]
        n = 6
        requests = [engine.submit(name, _input(network, i))
                    for i in range(n)]
        with engine:
            for request in requests:
                assert request.wait(timeout=5.0)
        net = engine.metrics.network(name)
        assert net.submitted.value == n
        assert net.completed.value == n
        expected_cycles = network_trace(network, "e").total_cycles * n
        assert net.sim_cycles.value == expected_cycles
        assert engine.metrics.total.latency.count == n
        assert engine.metrics.total.latency.percentile(0.5) > 0
        snapshot = engine.metrics.to_dict()
        assert snapshot["per_network"][name]["completed"] == n
        assert snapshot["total"]["sim_cycles"] == expected_cycles

    def test_histogram_percentiles(self):
        histogram = LatencyHistogram()
        for ms in range(1, 101):
            histogram.record(ms / 1e3)
        assert histogram.count == 100
        # Bucket upper bounds quantize by at most one 2**(1/4) step.
        assert 0.045 <= histogram.percentile(0.5) <= 0.062
        assert 0.090 <= histogram.percentile(0.95) <= 0.115
        assert histogram.percentile(1.0) == pytest.approx(0.1, rel=0.2)
        assert histogram.summary()["count"] == 100
        with pytest.raises(ValueError):
            histogram.percentile(1.5)
        with pytest.raises(ValueError):
            histogram.record(-1.0)

    def test_counter_and_gauge(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)
        gauge = Gauge()
        gauge.set(7)
        gauge.set(3)
        assert gauge.value == 3
        assert gauge.max == 7


class TestRegistryAndConfig:
    def test_registry_caches_entries_and_reuses_plan_for(self):
        registry = ModelRegistry(seed=11)
        network = NETWORKS[0]
        first = registry.get(network, "e")
        second = registry.get(network, "e")
        assert first is second
        assert len(registry) == 1
        assert first.plan is plan_for(network, "e")
        assert first.cycles_per_request == \
            network_trace(network, "e").total_cycles
        other = registry.get(network, "c")
        assert other is not first
        assert len(registry) == 2

    def test_registry_models_share_params(self):
        registry = ModelRegistry()
        entry = registry.get(NETWORKS[1], "e")
        assert entry.model.params is entry.params_raw
        assert entry.reference.params is entry.params_raw

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(max_batch_size=0)
        with pytest.raises(ValueError):
            EngineConfig(max_linger_s=-1.0)
        with pytest.raises(ValueError):
            EngineConfig(queue_capacity=0)

    def test_start_is_idempotent_and_stop_twice_ok(self):
        engine = _engine()
        engine.start()
        engine.start()
        engine.stop()
        engine.stop()
