"""Fused activation epilogue (optimization beyond the paper)."""

import numpy as np
import pytest

from repro.core import Cpu, Memory
from repro.isa import assemble
from repro.kernels import (AsmBuilder, LEVELS, MatvecJob, gen_matvec,
                           padded_row)
from repro.nn import apply_activation_fixed, dense_fixed


def run_fused(level_key, w, x, bias, activation):
    level = LEVELS[level_key]
    n_out, n_in = w.shape
    row_hw = padded_row(n_in, level_key)
    builder = AsmBuilder()
    gen_matvec(builder, level, MatvecJob(
        n_in=n_in, n_out=n_out, w_addr=0x8000, x_addr=0x2000,
        b_addr=0x3000, out_addr=0x3800, row_halfwords=row_hw,
        acc_addr=0x0FF0), fused_activation=activation)
    builder.emit("ebreak")
    mem = Memory(1 << 17)
    rows = np.zeros((n_out, row_hw), dtype=np.int64)
    rows[:, :n_in] = w
    mem.store_halfwords(0x8000, rows)
    xp = np.zeros(row_hw, dtype=np.int64)
    xp[:n_in] = x
    mem.store_halfwords(0x2000, xp)
    mem.store_halfwords(0x3000, bias)
    cpu = Cpu(assemble(builder.text()), mem, extensions=level.extensions)
    iss = cpu.run()
    return mem.load_halfwords(0x3800, n_out), iss, builder.trace


class TestFusedActivation:
    @pytest.mark.parametrize("level", ("c", "d", "e"))
    @pytest.mark.parametrize("activation", ("tanh", "sig", "relu"))
    def test_matches_golden(self, level, activation):
        rng = np.random.default_rng(hash((level, activation)) % 2 ** 31)
        w = rng.integers(-2000, 2000, (17, 14))
        x = rng.integers(-2000, 2000, 14)
        bias = rng.integers(-2000, 2000, 17)
        out, iss, model = run_fused(level, w, x, bias, activation)
        expected = apply_activation_fixed(dense_fixed(w, x, bias),
                                          activation)
        assert np.array_equal(out, expected)
        for t in (iss, model):
            t.instrs.pop("ebreak", None)
            t.cycles.pop("ebreak", None)
        assert iss == model

    def test_cheaper_than_separate_pass(self):
        from repro.kernels import ActivationJob, gen_activation
        rng = np.random.default_rng(0)
        n_in, n_out = 32, 40
        w = rng.integers(-1000, 1000, (n_out, n_in))
        x = rng.integers(-1000, 1000, n_in)
        bias = rng.integers(-500, 500, n_out)
        _, iss_fused, _ = run_fused("e", w, x, bias, "sig")

        builder = AsmBuilder()
        level = LEVELS["e"]
        row_hw = padded_row(n_in, "e")
        gen_matvec(builder, level, MatvecJob(
            n_in=n_in, n_out=n_out, w_addr=0x8000, x_addr=0x2000,
            b_addr=0x3000, out_addr=0x3800, row_halfwords=row_hw,
            acc_addr=0x0FF0))
        gen_activation(builder, level, ActivationJob(
            func="sig", addr=0x3800, count=n_out))
        separate = builder.trace.total_cycles
        assert iss_fused.total_cycles < separate
        # the saving is the whole standalone pass (3 cycles/element now
        # that it is software-pipelined) minus one pl.sig per out
        assert separate - iss_fused.total_cycles > 2 * n_out

    def test_rejected_on_sw_levels(self):
        builder = AsmBuilder()
        job = MatvecJob(n_in=4, n_out=4, w_addr=0x8000, x_addr=0x2000,
                        b_addr=0x3000, out_addr=0x3800, row_halfwords=4,
                        acc_addr=0x0FF0)
        with pytest.raises(ValueError):
            gen_matvec(builder, LEVELS["b"], job, fused_activation="relu")
        with pytest.raises(ValueError):
            gen_matvec(builder, LEVELS["a"], job, fused_activation="tanh")
