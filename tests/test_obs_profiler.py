"""Hierarchical profiler: exact Trace agreement on both engines."""

import json

import pytest

from repro.core import Cpu, Memory
from repro.isa import assemble
from repro.obs.profiler import (STALL_KINDS, profile_cpu, profile_network,
                                region_paths_from_labels)
from repro.rrm.networks import suite

NETWORKS = suite(4)
BY_NAME = {net.name: net for net in NETWORKS}


class TestRegionMetadata:
    @pytest.mark.parametrize("level", list("abcdef"))
    def test_region_paths_align_with_program(self, level):
        from repro.rrm.suite import plan_for
        plan = plan_for(BY_NAME["sun2017"], level)
        assert len(plan.region_paths) == len(assemble(plan.text))

    def test_paths_nest_layer_then_kernel(self):
        from repro.rrm.suite import plan_for
        plan = plan_for(BY_NAME["sun2017"], "e")
        layers = {path[0] for path in plan.region_paths if path}
        assert any(name.startswith("L0.") for name in layers)
        kernels = {path[1] for path in plan.region_paths if len(path) > 1}
        assert "matvec" in kernels


class TestExactness:
    @pytest.mark.parametrize("name", sorted(BY_NAME))
    def test_totals_equal_trace_all_networks(self, name):
        # profile_network asserts profile totals == Trace totals
        # internally; a return (no raise) is the pass.
        profile = profile_network(name, "e")
        assert profile.total_cycles > 0

    @pytest.mark.parametrize("level", list("abcdef"))
    def test_totals_equal_trace_all_levels(self, level):
        profile = profile_network("sun2017", level)
        assert profile.total_cycles > 0

    @pytest.mark.parametrize("level", list("abcdef"))
    def test_engines_agree_exactly(self, level):
        interp = profile_network("naparstek2019", level, engine="interp")
        turbo = profile_network("naparstek2019", level, engine="turbo")
        assert interp.total_cycles == turbo.total_cycles
        assert interp.total_instrs == turbo.total_instrs
        assert interp.stall_summary() == turbo.stall_summary()

    def test_stall_split_sums_to_cycles_minus_instrs(self):
        profile = profile_network("challita2017", "c")
        stalls = profile.stall_summary()
        assert set(stalls) <= set(STALL_KINDS)
        assert sum(stalls.values()) \
            == profile.total_cycles - profile.total_instrs

    def test_unknown_network_raises(self):
        with pytest.raises(KeyError):
            profile_network("nope", "e")


class TestExports:
    @pytest.fixture(scope="class")
    def profile(self):
        return profile_network("sun2017", "e")

    def test_folded_lines_sum_to_total(self, profile):
        total = 0
        for line in profile.folded().strip().splitlines():
            stack, cycles = line.rsplit(" ", 1)
            assert stack
            total += int(cycles)
        assert total == profile.total_cycles

    def test_folded_mnemonic_leaves(self, profile):
        folded = profile.folded(mnemonics=True)
        assert ";pl.sdotsp" in folded or ";lw" in folded
        total = sum(int(line.rsplit(" ", 1)[1])
                    for line in folded.strip().splitlines())
        assert total == profile.total_cycles

    def test_json_round_trip(self, profile):
        data = json.loads(profile.to_json())
        assert data["total_cycles"] == profile.total_cycles
        assert data["tree"]["name"] == "sun2017"
        assert data["meta"]["level"] == "e"
        child_sum = sum(c["cycles"] for c in data["tree"]["children"])
        assert child_sum + data["tree"]["self"]["cycles"] \
            == data["total_cycles"]

    def test_table_depth_filter(self, profile):
        full = profile.table()
        shallow = profile.table(max_depth=1)
        assert len(shallow.splitlines()) < len(full.splitlines())
        assert "matvec" not in shallow
        assert "matvec" in full


class TestLabelFallback:
    SOURCE = """
        li x1, 0
        li x2, 10
    loop:
        addi x1, x1, 1
        bne x1, x2, loop
    tail:
        addi x3, x0, 7
        ebreak
    """

    def test_label_regions(self):
        program = assemble(self.SOURCE)
        cpu = Cpu(program, Memory(1 << 16))
        cpu.run()
        profile = profile_cpu(cpu)
        names = {path[-1] for path, _node in profile.root.walk()}
        assert {"(entry)", "loop", "tail"} <= names
        trace = cpu.trace()
        assert profile.total_cycles == trace.total_cycles
        assert profile.total_instrs == trace.total_instrs

    def test_paths_cover_program(self):
        program = assemble(self.SOURCE)
        paths = region_paths_from_labels(program)
        assert len(paths) == len(program)
        assert paths[0] == ("(entry)",)

    def test_length_mismatch_rejected(self):
        program = assemble(self.SOURCE)
        cpu = Cpu(program, Memory(1 << 16))
        cpu.run()
        with pytest.raises(ValueError):
            profile_cpu(cpu, region_paths=[()])


class TestSuiteAutoEngine:
    def test_auto_resolves_by_scale(self):
        from repro.rrm.suite import resolve_engine
        assert resolve_engine("auto", scale=1) == "turbo"
        assert resolve_engine("auto", scale=4) == "interp"
        assert resolve_engine("interp", scale=1) == "interp"
        assert resolve_engine("turbo", scale=4) == "turbo"

    def test_runner_records_engine_used(self):
        from repro.rrm.suite import SuiteRunner
        runner = SuiteRunner(scale=4, check=False, engine="turbo")
        network = runner.networks[0]
        trace = runner.run_network(network, "e")
        assert trace.total_cycles > 0
        ran = runner.engines_used[f"{network.name}/e"]
        assert ran in ("turbo", "interp")

    def test_turbo_matches_interp_through_runner(self):
        from repro.rrm.suite import SuiteRunner
        network = BY_NAME["sun2017"]
        a = SuiteRunner(scale=4, check=False,
                        engine="interp").run_network(network, "e")
        b = SuiteRunner(scale=4, check=False,
                        engine="turbo").run_network(network, "e")
        assert a.total_cycles == b.total_cycles


class TestMeta:
    def test_meta_records_engine_and_context(self):
        profile = profile_network("sun2017", "e", engine="turbo")
        assert profile.meta["engine"] == "turbo"
        assert profile.meta["network"] == "sun2017"
        assert profile.meta["level"] == "e"
        assert profile.meta["wait_states"] == 0

    def test_check_mode_runs_golden_model(self):
        profile = profile_network("sun2017", "e", check=True)
        assert profile.total_cycles > 0

    def test_network_object_accepted(self):
        profile = profile_network(BY_NAME["sun2017"], "e")
        assert profile.meta["network"] == "sun2017"

    def test_input_randomness_is_seeded(self):
        a = profile_network("sun2017", "e", seed=7)
        b = profile_network("sun2017", "e", seed=7)
        assert a.total_cycles == b.total_cycles
