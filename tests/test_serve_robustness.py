"""Fault tolerance end to end: bisect isolation, breakers, watchdog,
weight-integrity guards (the acceptance scenarios from the robustness PR)."""

import time

import numpy as np

from repro.faults import FaultInjector, FaultSpec
from repro.nn.network import QuantModel
from repro.rrm.networks import suite
from repro.serve.engine import (EngineConfig, InferenceEngine, RequestStatus)

NETWORKS = suite(4)
BY_NAME = {net.name: net for net in NETWORKS}


def _input(network, seed=0):
    rng = np.random.default_rng(seed)
    floats = rng.uniform(-1.0, 1.0, network.input_size)
    return np.asarray(floats * 4096, dtype=np.int64)


def _engine(specs=None, **overrides):
    defaults = dict(level="e", max_batch_size=8, max_linger_s=0.001)
    defaults.update(overrides)
    injector = None if specs is None else FaultInjector(specs, seed=2020)
    return InferenceEngine(networks=NETWORKS,
                           config=EngineConfig(**defaults),
                           fault_injector=injector)


def _expected(engine, network, x):
    entry = engine.registry.get(network, "e")
    reference = QuantModel(network, entry.params_raw)
    reference.reset()
    return reference.forward(
        np.repeat(x[None, :], network.timesteps, axis=0))


def _wait_all(requests, timeout=10.0):
    for request in requests:
        assert request.wait(timeout=timeout)


class TestBisectIsolation:
    def test_poison_request_fails_alone_peers_bit_exact(self):
        name = "sun2017"
        engine = _engine([FaultSpec(kind="poison", network=name, seqs=(2,))])
        xs = [_input(BY_NAME[name], seed) for seed in range(6)]
        requests = [engine.submit(name, x) for x in xs]
        with engine:
            _wait_all(requests)
        # Only the poison request failed; everyone else is bit-exact.
        assert requests[2].status == RequestStatus.FAILED
        assert "InjectedCrash" in requests[2].error
        for i, (request, x) in enumerate(zip(requests, xs)):
            if i == 2:
                continue
            assert request.ok, f"peer {i}: {request.status}"
            assert np.array_equal(request.output,
                                  _expected(engine, BY_NAME[name], x))
        net = engine.metrics.network(name)
        assert net.bisects.value >= 1
        assert net.failed.value == 1
        # Isolating one poison request is a batch *success*: the breaker
        # must not have opened.
        assert engine.breakers[name].state == "closed"
        assert net.breaker_opens.value == 0

    def test_transient_crash_batch_fully_recovers(self):
        name = "wang2018"
        engine = _engine([FaultSpec(kind="crash", network=name,
                                    start=0, stop=6, transient=True)])
        requests = [engine.submit(name, _input(BY_NAME[name], i))
                    for i in range(6)]
        with engine:
            _wait_all(requests)
        assert all(r.ok for r in requests)
        net = engine.metrics.network(name)
        assert net.batch_failures.value >= 1
        assert net.bisects.value + net.retries.value >= 1
        assert engine.breakers[name].state == "closed"

    def test_transient_crash_on_single_request_recovers_via_retry(self):
        name = "lee2018"
        engine = _engine([FaultSpec(kind="crash", network=name,
                                    start=0, stop=1, transient=True)])
        request = engine.submit(name, _input(BY_NAME[name]))
        with engine:
            assert request.wait(timeout=10.0)
        assert request.ok  # nothing to bisect; the retry budget saved it
        assert engine.metrics.network(name).retries.value == 1


class TestCircuitBreaker:
    def test_persistent_crash_opens_then_probes_reclose(self):
        name = "challita2017"
        engine = _engine(
            [FaultSpec(kind="crash", network=name, start=0, stop=2,
                       transient=False)],
            breaker_failure_threshold=1,
            breaker_backoff_s=0.3,
            failed_single_retries=0,
        )
        doomed = [engine.submit(name, _input(BY_NAME[name], i))
                  for i in range(2)]
        with engine:
            _wait_all(doomed)
            assert all(r.status == RequestStatus.FAILED for r in doomed)
            # The fully-failed batch tripped the breaker: fast-fail now.
            assert engine.breakers[name].state == "open"
            shed = engine.submit(name, _input(BY_NAME[name], 10))
            assert shed.status == RequestStatus.REJECTED_UNAVAILABLE
            assert shed._done.is_set()
            # After the backoff a probe (seq 3, outside the fault window)
            # succeeds and re-closes the breaker.
            time.sleep(0.4)
            probe = engine.submit(name, _input(BY_NAME[name], 11))
            assert probe.wait(timeout=10.0)
            assert probe.ok
            assert engine.breakers[name].state == "closed"
        net = engine.metrics.network(name)
        assert net.rejected_unavailable.value == 1
        assert net.breaker_opens.value == 1
        assert net.breaker_closes.value == 1
        events = [(e["network"], e["from"], e["to"])
                  for e in engine.breaker_events]
        assert (name, "closed", "open") in events
        assert (name, "half_open", "closed") in events

    def test_other_networks_unaffected_by_open_breaker(self):
        bad, good = "challita2017", "sun2017"
        engine = _engine(
            [FaultSpec(kind="crash", network=bad, start=0, stop=1,
                       transient=False)],
            breaker_failure_threshold=1,
            breaker_backoff_s=30.0,
            breaker_backoff_max_s=30.0,
            failed_single_retries=0,
        )
        doomed = engine.submit(bad, _input(BY_NAME[bad]))
        with engine:
            assert doomed.wait(timeout=10.0)
            assert engine.breakers[bad].state == "open"
            ok = engine.submit(good, _input(BY_NAME[good]))
            assert ok.wait(timeout=10.0)
            assert ok.ok
            assert engine.breakers[good].state == "closed"


class TestWeightIntegrity:
    def test_bitflip_detected_and_repaired_outputs_stay_correct(self):
        name = "naparstek2019"
        engine = _engine(
            [FaultSpec(kind="bitflip", network=name, start=0, stop=8,
                       rate=3.0)],
            integrity_check_every=1, max_batch_size=1)
        xs = [_input(BY_NAME[name], seed) for seed in range(8)]
        requests = [engine.submit(name, x) for x in xs]
        with engine:
            _wait_all(requests)
        net = engine.metrics.network(name)
        assert net.faults_injected.value >= 1
        assert net.integrity_checks.value >= 1
        assert net.integrity_repairs.value >= 1
        # The cadence check runs after injection and before inference, so
        # every output must still be bit-exact despite the flips.
        for request, x in zip(requests, xs):
            assert request.ok
            assert np.array_equal(request.output,
                                  _expected(engine, BY_NAME[name], x))
        # And the arrays themselves ended up pristine.
        entry = engine.registry.get(BY_NAME[name], "e")
        assert engine.registry.verify(entry) == []

    def test_integrity_guard_disabled_with_zero_cadence(self):
        name = "yu2017"
        engine = _engine(
            [FaultSpec(kind="bitflip", network=name, start=0, stop=4,
                       rate=3.0)],
            integrity_check_every=0, max_batch_size=1)
        requests = [engine.submit(name, _input(BY_NAME[name], i))
                    for i in range(4)]
        with engine:
            _wait_all(requests)
        net = engine.metrics.network(name)
        assert net.integrity_checks.value == 0
        assert net.integrity_repairs.value == 0
        entry = engine.registry.get(BY_NAME[name], "e")
        assert engine.registry.verify(entry)  # corruption went unrepaired


class TestWatchdog:
    def test_worker_kill_restart_restores_service(self):
        victim, bystander = "sun2017", "wang2018"
        engine = _engine(
            [FaultSpec(kind="kill", network=victim, start=0, stop=1)],
            watchdog_interval_s=0.01)
        killed = engine.submit(victim, _input(BY_NAME[victim]))
        others = [engine.submit(bystander, _input(BY_NAME[bystander], i))
                  for i in range(3)]
        with engine:
            # The stranded in-flight request is failed by the watchdog.
            assert killed.wait(timeout=10.0)
            assert killed.status == RequestStatus.FAILED
            assert "died" in killed.error
            # Other networks never noticed.
            _wait_all(others)
            assert all(r.ok for r in others)
            # The restarted worker serves the victim network again.
            revived = engine.submit(victim, _input(BY_NAME[victim], 5))
            assert revived.wait(timeout=10.0)
            assert revived.ok
        net = engine.metrics.network(victim)
        assert net.worker_restarts.value == 1
        assert engine.metrics.network(bystander).worker_restarts.value == 0

    def test_restart_budget_exhausted_forces_breaker_open(self):
        name = "eisen2019"
        engine = _engine(
            [FaultSpec(kind="kill", network=name, start=0, stop=1)],
            watchdog_interval_s=0.01, max_worker_restarts=0)
        requests = [engine.submit(name, _input(BY_NAME[name], i))
                    for i in range(3)]
        with engine:
            _wait_all(requests)
            assert all(r.status == RequestStatus.FAILED for r in requests)
            deadline = time.monotonic() + 5.0
            while (engine.breakers[name].state != "open"
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert engine.breakers[name].state == "open"
            shed = engine.submit(name, _input(BY_NAME[name], 9))
            assert shed.status == RequestStatus.REJECTED_UNAVAILABLE
        assert engine.metrics.network(name).worker_restarts.value == 0


class TestRegistryFailureGuard:
    def test_registry_exception_fails_batch_not_worker(self, monkeypatch):
        name = "sun2017"
        engine = _engine()
        real_get = engine.registry.get
        calls = {"n": 0}

        def flaky_get(network, level):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("model store unreachable")
            return real_get(network, level)

        monkeypatch.setattr(engine.registry, "get", flaky_get)
        first = engine.submit(name, _input(BY_NAME[name]))
        with engine:
            assert first.wait(timeout=10.0)
            assert first.status == RequestStatus.FAILED
            assert "model store unreachable" in first.error
            # The worker survived the exception and serves the retry.
            second = engine.submit(name, _input(BY_NAME[name], 1))
            assert second.wait(timeout=10.0)
            assert second.ok
        net = engine.metrics.network(name)
        assert net.batch_failures.value == 1
        assert engine.breakers[name].state == "closed"
