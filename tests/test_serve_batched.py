"""Bit-exactness of the batched executor against the per-sample golden model.

Property-style: for every suite network, random Q3.12 parameters and
inputs, batch sizes 1/3/16 and multiple timesteps, every row of the
batched output must equal an independent per-sample ``QuantModel`` run.
"""

import numpy as np
import pytest

from repro.nn.network import (DenseSpec, LstmSpec, Network, QuantModel,
                              init_params, quantize_params)
from repro.rrm.networks import FULL_SUITE, suite
from repro.serve.batched import (BatchedQuantModel, conv2d_fixed_batch,
                                 dense_fixed_batch, lstm_step_fixed_batch)

BATCH_SIZES = (1, 3, 16)


def _params(network, seed=7, scale=1.0):
    return quantize_params(
        init_params(network, np.random.default_rng(seed), scale=scale))


def _inputs(rng, shape, spread=1.0):
    return np.asarray(rng.uniform(-spread, spread, shape) * 4096,
                      dtype=np.int64)


def _assert_bitexact(network, params, xs):
    """xs: (B, T, in_size); every row must match a per-sample run."""
    batch_size, timesteps, _ = xs.shape
    batched = BatchedQuantModel(network, params)
    batched.reset(batch_size)
    out = batched.forward(xs.transpose(1, 0, 2))
    for row in range(batch_size):
        reference = QuantModel(network, params)
        expected = reference.forward(xs[row])
        assert np.array_equal(out[row], expected), (
            f"{network.name}: batched row {row} diverges "
            f"(B={batch_size}, T={timesteps})")


class TestFullSuiteBitExact:
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    @pytest.mark.parametrize("network", FULL_SUITE,
                             ids=[n.name for n in FULL_SUITE])
    def test_matches_per_sample_quantmodel(self, network, batch_size):
        # Recurrent networks get several timesteps so batched state
        # (h, c) evolution is exercised, not just a single forward.
        timesteps = 3 if network.is_recurrent else network.timesteps
        rng = np.random.default_rng(hash((network.name, batch_size)) % 2**32)
        xs = _inputs(rng, (batch_size, timesteps, network.input_size))
        _assert_bitexact(network, _params(network), xs)

    @pytest.mark.parametrize("network", suite(4),
                             ids=[n.name for n in suite(4)])
    def test_scaled_suite_saturation_stress(self, network):
        # Oversized params + inputs spanning the full Q3.12 range drive
        # the datapath into saturation and 32-bit wraparound; the batched
        # model must reproduce those exactly too.
        rng = np.random.default_rng(99)
        xs = _inputs(rng, (8, network.timesteps, network.input_size),
                     spread=7.9)
        _assert_bitexact(network, _params(network, scale=6.0), xs)


class TestBatchedPrimitives:
    def test_dense_rows_independent(self):
        rng = np.random.default_rng(3)
        w = rng.integers(-2000, 2000, (6, 9), dtype=np.int64)
        b = rng.integers(-500, 500, 6, dtype=np.int64)
        x = rng.integers(-32768, 32767, (4, 9), dtype=np.int64)
        from repro.nn.layers import dense_fixed
        out = dense_fixed_batch(w, x, b)
        for row in range(4):
            assert np.array_equal(out[row], dense_fixed(w, x[row], b))

    def test_lstm_rows_independent(self):
        rng = np.random.default_rng(4)
        m, n, batch = 5, 4, 3
        w = rng.integers(-2000, 2000, (4 * n, m + n), dtype=np.int64)
        b = rng.integers(-500, 500, 4 * n, dtype=np.int64)
        x = rng.integers(-8000, 8000, (batch, m), dtype=np.int64)
        h = rng.integers(-4096, 4096, (batch, n), dtype=np.int64)
        c = rng.integers(-8000, 8000, (batch, n), dtype=np.int64)
        from repro.nn.layers import lstm_step_fixed
        h_new, c_new = lstm_step_fixed_batch(w, b, x, h, c)
        for row in range(batch):
            h_ref, c_ref = lstm_step_fixed(w, b, x[row], h[row], c[row])
            assert np.array_equal(h_new[row], h_ref)
            assert np.array_equal(c_new[row], c_ref)

    def test_conv_rows_independent(self):
        rng = np.random.default_rng(5)
        w = rng.integers(-2000, 2000, (3, 2, 3, 3), dtype=np.int64)
        b = rng.integers(-500, 500, 3, dtype=np.int64)
        x = rng.integers(-8000, 8000, (4, 2, 6, 6), dtype=np.int64)
        from repro.nn.layers import conv2d_fixed
        out = conv2d_fixed_batch(w, x, b)
        for row in range(4):
            assert np.array_equal(out[row], conv2d_fixed(w, x[row], b))


class TestBatchedApi:
    def _network(self):
        return Network(name="t", layers=(LstmSpec(4, 4),
                                         DenseSpec(4, 2, "sig")),
                       timesteps=2)

    def test_infer_broadcasts_single_input(self):
        network = self._network()
        params = _params(network)
        rng = np.random.default_rng(0)
        x = _inputs(rng, (3, network.input_size))
        batched = BatchedQuantModel(network, params)
        out = batched.infer(x)
        # (B, in) means "feed the same input at every timestep".
        expanded = np.repeat(x[:, None, :], network.timesteps, axis=1)
        assert np.array_equal(out, BatchedQuantModel(network,
                                                     params).infer(expanded))

    def test_infer_rejects_bad_timesteps(self):
        network = self._network()
        batched = BatchedQuantModel(network, _params(network))
        with pytest.raises(ValueError, match="expected"):
            batched.infer(np.zeros((2, 5, network.input_size),
                                   dtype=np.int64))

    def test_step_rejects_batch_size_change(self):
        network = self._network()
        batched = BatchedQuantModel(network, _params(network))
        batched.step(np.zeros((3, network.input_size), dtype=np.int64))
        with pytest.raises(ValueError, match="batch size changed"):
            batched.step(np.zeros((4, network.input_size), dtype=np.int64))

    def test_reset_requires_positive_batch(self):
        network = self._network()
        batched = BatchedQuantModel(network, _params(network))
        with pytest.raises(ValueError):
            batched.reset(0)
