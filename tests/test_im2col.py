"""Full-im2col conv ablation kernel."""

import numpy as np
import pytest

from repro.core import Cpu, Memory
from repro.isa import assemble
from repro.kernels import AsmBuilder, ConvJob, LEVELS, padded_row
from repro.kernels.conv import gen_conv
from repro.kernels.im2col import gen_conv_im2col, im2col_buffer_halfwords
from repro.nn import conv2d_fixed


def _setup(level_key, w, x, bias):
    cout, cin, k, _ = w.shape
    _, h, wid = x.shape
    patch_hw = padded_row(cin * k * k, level_key)
    job = ConvJob(cin=cin, cout=cout, h=h, w=wid, k=k,
                  w_addr=0x8000, x_addr=0x2000, b_addr=0x4000,
                  out_addr=0x5000, patch_addr=0x1800,
                  patch_row_halfwords=patch_hw, acc_addr=0x0FF0)
    mem = Memory(1 << 19)
    rows = np.zeros((cout, patch_hw), dtype=np.int64)
    rows[:, :cin * k * k] = w.reshape(cout, -1)
    mem.store_halfwords(0x8000, rows)
    mem.store_halfwords(0x2000, x)
    mem.store_halfwords(0x4000, bias)
    return job, mem


def run_im2col(level_key, w, x, bias, col_addr=0x20000):
    job, mem = _setup(level_key, w, x, bias)
    builder = AsmBuilder()
    gen_conv_im2col(builder, LEVELS[level_key], job, col_addr)
    builder.emit("ebreak")
    cpu = Cpu(assemble(builder.text()), mem,
              extensions=LEVELS[level_key].extensions)
    iss = cpu.run()
    out = mem.load_halfwords(0x5000, job.cout * job.h_out * job.w_out)
    return out.reshape(job.cout, job.h_out, job.w_out), iss, builder.trace


class TestIm2colConv:
    @pytest.mark.parametrize("level", ("b", "c", "d", "e"))
    def test_matches_golden(self, level):
        rng = np.random.default_rng(3)
        w = rng.integers(-1200, 1200, (4, 2, 3, 3))
        x = rng.integers(-2000, 2000, (2, 6, 6))
        bias = rng.integers(-500, 500, 4)
        out, _, _ = run_im2col(level, w, x, bias)
        assert np.array_equal(out, conv2d_fixed(w, x, bias))

    def test_model_equals_iss(self):
        rng = np.random.default_rng(4)
        w = rng.integers(-1000, 1000, (3, 2, 2, 2))
        x = rng.integers(-1500, 1500, (2, 5, 5))
        bias = rng.integers(-400, 400, 3)
        _, iss, model = run_im2col("d", w, x, bias)
        for t in (iss, model):
            t.instrs.pop("ebreak", None)
            t.cycles.pop("ebreak", None)
        assert iss == model

    def test_level_a_rejected(self):
        builder = AsmBuilder()
        job = ConvJob(cin=1, cout=1, h=4, w=4, k=2, w_addr=0x8000,
                      x_addr=0x2000, b_addr=0x4000, out_addr=0x5000,
                      patch_addr=0x1800, patch_row_halfwords=4)
        with pytest.raises(ValueError):
            gen_conv_im2col(builder, LEVELS["a"], job, 0x20000)

    def test_buffer_sizing(self):
        job = ConvJob(cin=2, cout=4, h=6, w=6, k=3, w_addr=0, x_addr=0,
                      b_addr=0, out_addr=0, patch_addr=0,
                      patch_row_halfwords=padded_row(18, "d"))
        assert im2col_buffer_halfwords(job) == 16 * padded_row(18, "d")

    def test_same_result_as_gather_conv(self):
        """Both optimized conv formulations compute identical outputs."""
        rng = np.random.default_rng(5)
        w = rng.integers(-1000, 1000, (4, 3, 3, 3))
        x = rng.integers(-1500, 1500, (3, 7, 7))
        bias = rng.integers(-400, 400, 4)
        out_im2col, iss_im2col, _ = run_im2col("d", w, x, bias)

        job, mem = _setup("d", w, x, bias)
        builder = AsmBuilder()
        gen_conv(builder, LEVELS["d"], job)
        builder.emit("ebreak")
        cpu = Cpu(assemble(builder.text()), mem)
        iss_gather = cpu.run()
        out_gather = mem.load_halfwords(
            0x5000, job.cout * job.h_out * job.w_out).reshape(
            job.cout, job.h_out, job.w_out)
        assert np.array_equal(out_im2col, out_gather)
        # with few output channels the gather amortizes worse: im2col's
        # single materialization pass is cheaper per MAC for small cout
        assert iss_im2col.total_cycles != iss_gather.total_cycles
