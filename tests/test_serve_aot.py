"""AOT serving plans: bit-exactness, cycle-exactness, ABFT, fallback.

The compiled plan must be indistinguishable from the batched
interpreter — which is itself certified row-for-row against the scalar
``QuantModel`` — on every suite network, at every optimisation level,
over the full Q3.12 input range, with and without the ABFT checksum
hook.  Cycle estimates must equal the static performance model
exactly.
"""

import numpy as np
import pytest

from repro.kernels.common import LEVELS
from repro.nn.network import QuantModel, init_params, quantize_params
from repro.perfmodel import predict_network_cycles
from repro.resilience.abft import AbftBatchedModel, SdcDetected
from repro.rrm.networks import FULL_SUITE, suite
from repro.serve.aot import (AotAbftModel, AotBatchedModel, _PLAN_CACHE,
                             build_serving_model, compile_plan)
from repro.serve.batched import BatchedQuantModel

_IDS = [n.name for n in FULL_SUITE]


def _params(network, seed=7, scale=1.0):
    return quantize_params(
        init_params(network, np.random.default_rng(seed), scale=scale))


def _inputs(rng, shape, spread=1.0):
    return np.asarray(rng.uniform(-spread, spread, shape) * 4096,
                      dtype=np.int64)


def _batch(network, rng, batch_size, spread=1.0):
    return _inputs(rng, (batch_size, network.timesteps,
                         network.input_size), spread=spread)


class TestBitExactness:
    """AOT ≡ batched interpreter ≡ scalar QuantModel."""

    @pytest.mark.parametrize("batch_size", (1, 3, 16))
    @pytest.mark.parametrize("network", FULL_SUITE, ids=_IDS)
    def test_triple_equivalence(self, network, batch_size):
        rng = np.random.default_rng(
            hash(("aot", network.name, batch_size)) % 2**32)
        params = _params(network)
        xs = _batch(network, rng, batch_size)
        aot = AotBatchedModel(network, params)
        batched = BatchedQuantModel(network, params)
        out = aot.infer(xs)
        assert np.array_equal(out, batched.infer(xs))
        for row in range(batch_size):
            scalar = QuantModel(network, params)
            assert np.array_equal(out[row], scalar.forward(xs[row])), (
                f"{network.name}: AOT row {row} diverges from scalar")

    @pytest.mark.parametrize("network", suite(4),
                             ids=[n.name for n in suite(4)])
    def test_saturation_stress(self, network):
        # Oversized params + full-range inputs exercise saturation and
        # 32-bit wraparound through the float64-GEMM datapath.
        rng = np.random.default_rng(hash(("sat", network.name)) % 2**32)
        params = _params(network, scale=8.0)
        xs = np.asarray(
            rng.integers(-32768, 32768,
                         (8, network.timesteps, network.input_size)),
            dtype=np.int64)
        aot = AotBatchedModel(network, params)
        assert np.array_equal(aot.infer(xs),
                              BatchedQuantModel(network, params).infer(xs))

    @pytest.mark.parametrize("network", FULL_SUITE, ids=_IDS)
    def test_fuzz_randomized(self, network):
        params = _params(network, seed=31, scale=2.0)
        aot = AotBatchedModel(network, params)
        batched = BatchedQuantModel(network, params)
        for trial in range(5):
            rng = np.random.default_rng(9000 + trial)
            xs = _batch(network, rng, int(rng.integers(1, 9)),
                        spread=float(rng.uniform(0.1, 8.0)))
            assert np.array_equal(aot.infer(xs), batched.infer(xs))

    def test_2d_input_path(self):
        network = FULL_SUITE[0]
        params = _params(network)
        rng = np.random.default_rng(3)
        x2 = _inputs(rng, (5, network.input_size))
        aot = AotBatchedModel(network, params)
        assert np.array_equal(aot.infer(x2),
                              BatchedQuantModel(network, params).infer(x2))

    def test_wide_input_fallback_is_bit_exact(self):
        # Inputs beyond int16 void the float64 exactness proof; the
        # model must route through the interpreter and still agree.
        network = FULL_SUITE[0]
        params = _params(network)
        rng = np.random.default_rng(4)
        xs = np.asarray(
            rng.integers(-(1 << 20), 1 << 20,
                         (4, network.timesteps, network.input_size)),
            dtype=np.int64)
        aot = AotBatchedModel(network, params)
        assert np.array_equal(aot.infer(xs),
                              BatchedQuantModel(network, params).infer(xs))


class TestCycleExactness:
    @pytest.mark.parametrize("level", LEVELS)
    @pytest.mark.parametrize("network", FULL_SUITE, ids=_IDS)
    def test_matches_static_model(self, network, level):
        model = AotBatchedModel(network, _params(network), level=level)
        assert model.cycles_per_request == \
            predict_network_cycles(network, level).cycles


class TestAbft:
    @pytest.mark.parametrize("network", FULL_SUITE, ids=_IDS)
    def test_clean_run_matches_plain(self, network):
        params = _params(network)
        rng = np.random.default_rng(hash(("abft", network.name)) % 2**32)
        xs = _batch(network, rng, 4)
        abft = AotAbftModel(network, params)
        assert np.array_equal(abft.infer(xs),
                              AotBatchedModel(network, params).infer(xs))
        assert abft.sdc_detections == 0

    def test_detects_injected_sdc(self):
        network = FULL_SUITE[0]
        params = _params(network)
        xs = _batch(network, np.random.default_rng(5), 4)
        abft = AotAbftModel(network, params)
        # Flip a bit above the requantization shift so the corruption
        # would be output-visible if it went undetected.
        abft.arm_sdc(lambda acc: acc.__setitem__(
            (0, 0), acc[0, 0] ^ (1 << 20)))
        with pytest.raises(SdcDetected) as exc:
            abft.infer(xs)
        assert 0 in exc.value.rows
        assert abft.sdc_detections >= 1

    def test_detection_parity_with_batched_abft(self):
        # Same corruption, same verdict as the interpreter's ABFT.
        network = FULL_SUITE[0]
        params = _params(network)
        xs = _batch(network, np.random.default_rng(6), 4)

        def corrupt(acc):
            acc[1, 0] ^= 1 << 16

        for model in (AotAbftModel(network, params),
                      AbftBatchedModel(network, params)):
            model.arm_sdc(corrupt)
            with pytest.raises(SdcDetected) as exc:
                model.infer(xs)
            assert exc.value.rows == (1,)

    def test_silent_sdc_parity_with_batched(self):
        # The plain AOT model must corrupt *identically* to the plain
        # interpreter: same one-shot hook point, same visible damage.
        network = FULL_SUITE[0]
        params = _params(network)
        xs = _batch(network, np.random.default_rng(7), 4)

        def corrupt(acc):
            acc[0, 0] ^= 1 << 20

        aot = AotBatchedModel(network, params)
        batched = BatchedQuantModel(network, params)
        aot.arm_sdc(corrupt)
        batched.arm_sdc(corrupt)
        out_a, out_b = aot.infer(xs), batched.infer(xs)
        assert np.array_equal(out_a, out_b)
        clean = BatchedQuantModel(network, params).infer(xs)
        assert not np.array_equal(out_a, clean)


class TestPlanCacheAndFallback:
    def test_plan_cache_reuses_compiled_plans(self):
        network = FULL_SUITE[0]
        assert compile_plan(network) is compile_plan(network)
        assert compile_plan(network, abft=True) is not compile_plan(network)
        assert (network, False) in _PLAN_CACHE
        assert (network, True) in _PLAN_CACHE

    def test_build_serving_model_backends(self):
        network = FULL_SUITE[0]
        params = _params(network)
        assert isinstance(build_serving_model(network, params),
                          AotBatchedModel)
        assert isinstance(build_serving_model(network, params, abft=True),
                          AotAbftModel)
        batched = build_serving_model(network, params, backend="batched")
        assert type(batched) is BatchedQuantModel
        abft = build_serving_model(network, params, backend="batched",
                                   abft=True)
        assert type(abft) is AbftBatchedModel
        with pytest.raises(ValueError):
            build_serving_model(network, params, backend="jit")

    def test_shape_validation(self):
        network = FULL_SUITE[0]
        model = AotBatchedModel(network, _params(network))
        with pytest.raises(ValueError):
            model.infer(np.zeros((2, 99, network.input_size),
                                 dtype=np.int64))
        with pytest.raises(ValueError):
            model.infer(np.zeros(network.input_size, dtype=np.int64))


class TestRegistryIntegration:
    def test_registry_serves_aot_by_default(self):
        from repro.serve.engine import ModelRegistry
        registry = ModelRegistry(seed=2020)
        network = FULL_SUITE[0]
        entry = registry.get(network, "e")
        assert entry.backend == "aot"
        assert isinstance(entry.model, AotBatchedModel)

    def test_repair_reloads_compiled_weights(self):
        from repro.serve.engine import ModelRegistry
        registry = ModelRegistry(seed=2020)
        network = FULL_SUITE[0]
        entry = registry.get(network, "e")
        rng = np.random.default_rng(8)
        xs = _batch(network, rng, 3)
        golden = entry.model.infer(xs)
        # Corrupt a live parameter tensor, then repair: the compiled
        # operands must be rebuilt from the restored params.
        layer = entry.params_raw[0]
        key = next(iter(layer))
        layer[key] ^= 1
        entry.model.reload_params()
        registry.repair(entry)
        assert np.array_equal(entry.model.infer(xs), golden)
