"""Lint drivers over the generated kernels, and the CLI subcommand."""

import json

import pytest

from repro.analysis import lint_network, lint_suite
from repro.cli import main
from repro.rrm.networks import FULL_SUITE

_BY_NAME = {n.name: n for n in FULL_SUITE}


class TestKernelLint:
    @pytest.mark.parametrize("level", list("abcdef"))
    def test_no_errors_on_any_network(self, level):
        """Acceptance gate: every generated kernel at every level is
        free of error-severity findings."""
        for network in FULL_SUITE:
            result = lint_network(network, level)
            bad = [f for f in result.findings if f.severity == "error"]
            assert not bad, f"{result.name}: {[f.render() for f in bad]}"

    def test_stall_free_levels_have_no_stall_warnings(self):
        # After the scheduling fixes, levels c/e/f carry no avoidable
        # load-use stalls anywhere in the suite.
        for level in ("c", "e", "f"):
            for network in FULL_SUITE:
                result = lint_network(network, level)
                stalls = [f for f in result.findings
                          if f.rule == "load-use-stall"]
                assert stalls == [], f"{network.name}/{level}"

    def test_level_d_keeps_the_paper_input_bubble(self):
        # The paper's own Table I shows the level-d input-load bubble;
        # the linter must keep reporting it (it is real), and it must
        # stay warning severity (it is legal code).
        result = lint_network(_BY_NAME["challita2017"], "d")
        stalls = [f for f in result.findings
                  if f.rule == "load-use-stall"]
        assert stalls
        assert all(f.severity == "warning" for f in stalls)

    def test_lint_suite_shape(self):
        results = lint_suite(level_keys=("e",),
                             networks=[_BY_NAME["eisen2019"]])
        assert len(results) == 1
        assert results[0].name == "eisen2019/e"


class TestCli:
    def test_lint_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "ok.s"
        path.write_text("addi t0, x0, 1\naddi t1, t0, 1\nebreak\n")
        assert main(["lint", str(path)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_lint_error_file_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "bad.s"
        path.write_text(
            "addi t1, x0, 0x100\n"
            "lp.setupi 0, 4, end\n"
            "addi t2, t2, 1\n"
            "p.lw t3, 4(t1!)\n"
            "end:\n"
            "ebreak\n")
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "hwloop-load-end" in out

    def test_lint_json_output(self, tmp_path, capsys):
        path = tmp_path / "warn.s"
        path.write_text("lw t0, 0(x0)\naddi t1, t0, 1\nebreak\n")
        assert main(["lint", "--json", str(path)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["total_errors"] == 0
        assert doc["total_warnings"] == 1
        (res,) = doc["results"]
        assert res["findings"][0]["rule"] == "load-use-stall"

    def test_lint_kernels_selection(self, capsys):
        rc = main(["lint", "--networks", "eisen2019", "--levels", "e"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "eisen2019/e" in out

    def test_lint_unknown_network_rejected(self, capsys):
        assert main(["lint", "--networks", "nope"]) == 2
