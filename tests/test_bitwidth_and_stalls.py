"""Bit-width sweep driver and the Trace stall summary."""

import pytest

from repro.core import Cpu, Memory
from repro.core.tracer import Trace
from repro.eval.bitwidth import (FRAC_BITS, compute_bitwidth_sweep,
                                 format_bitwidth)
from repro.isa import assemble


class TestBitwidthSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return compute_bitwidth_sweep(n_eval=20)

    def test_sweep_covers_widths(self, result):
        assert [r["frac_bits"] for r in result["rows"]] == list(FRAC_BITS)

    def test_loss_monotone_down_with_precision(self, result):
        losses = [r["loss_pct"] for r in result["rows"]]
        # broadly monotone: each step may not strictly decrease, but the
        # coarsest format must lose the most and Q3.12 must be transparent
        assert losses[0] == max(losses)
        q312 = next(r for r in result["rows"] if r["frac_bits"] == 12)
        assert abs(q312["loss_pct"]) < 0.25

    def test_coarse_formats_lose_visibly(self, result):
        q3_4 = next(r for r in result["rows"] if r["frac_bits"] == 4)
        q3_12 = next(r for r in result["rows"] if r["frac_bits"] == 12)
        assert q3_4["loss_pct"] > q3_12["loss_pct"]

    def test_format(self, result):
        text = format_bitwidth(result)
        assert "Q3.12" in text and "knee" in text


class TestStallSummary:
    def test_load_use_stalls_reported(self):
        cpu = Cpu(assemble("""
            li a0, 0x100
            lw a1, 0(a0)
            addi a2, a1, 1
            beq x0, x0, end
        end:
            ebreak
        """), Memory(1 << 12))
        trace = cpu.run()
        extras = trace.stall_summary()
        assert extras["lw"] == 1
        assert extras["beq"] == 1  # taken-branch penalty
        assert "addi" not in extras

    def test_clean_code_has_no_stalls(self):
        cpu = Cpu(assemble("addi a0, a0, 1\nadd a1, a0, a0\nebreak\n"))
        trace = cpu.run()
        assert trace.stall_summary() == {}

    def test_empty_trace(self):
        assert Trace().stall_summary() == {}
